"""The RX assembly: headset plus rigidly attached receive optics.

In the prototype the RX GMA (galvo + collimator + SFP fiber) and the
Oculus Rift S are bolted to one breadboard (Fig. 12), so the GMA rides
rigidly with the headset body frame.  :class:`RxAssembly` captures that
rigid attachment: it owns the ground-truth RX galvo hardware (whose
parameters live in the GMA's own K-space) and the fixed K-space-to-body
transform, and answers world-frame geometry queries for any body pose.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..galvo import GalvoHardware
from ..geometry import Plane, Ray, RigidTransform
from .pose import Pose


@dataclass
class RxAssembly:
    """Receive terminal riding on the headset.

    ``kspace_to_body`` is where the GMA sits relative to the headset
    body frame -- fixed at assembly time, never directly observable;
    the Section 4.2 fit learns (a function of) it.
    """

    hardware: GalvoHardware
    kspace_to_body: RigidTransform

    def body_to_world(self, body_pose: Pose) -> RigidTransform:
        """Transform from the headset body frame into the world."""
        return body_pose.as_transform()

    def kspace_to_world(self, body_pose: Pose) -> RigidTransform:
        """Transform from the GMA's K-space into the world."""
        return self.body_to_world(body_pose).compose(self.kspace_to_body)

    def world_beam(self, body_pose: Pose) -> Ray:
        """The imaginary beam emanating from RX, in world coordinates.

        This is Lemma 1's "optical path of an imaginary beam emanating
        from RX": the collimator's outgoing path through the RX GM for
        the currently applied voltages.
        """
        return self.kspace_to_world(body_pose).apply_ray(
            self.hardware.output_beam())

    def world_second_mirror_plane(self, body_pose: Pose) -> Plane:
        """The RX GM's second-mirror plane, in world coordinates."""
        plane = self.hardware.second_mirror_plane()
        transform = self.kspace_to_world(body_pose)
        return Plane(transform.apply_point(plane.point),
                     transform.apply_direction(plane.normal))


@dataclass
class TxAssembly:
    """Transmit terminal, statically mounted (e.g. on the ceiling)."""

    hardware: GalvoHardware
    kspace_to_world: RigidTransform

    def world_beam(self) -> Ray:
        """The beam currently launched by TX, in world coordinates."""
        return self.kspace_to_world.apply_ray(self.hardware.output_beam())

    def world_second_mirror_plane(self) -> Plane:
        """The TX GM's second-mirror plane, in world coordinates."""
        plane = self.hardware.second_mirror_plane()
        return Plane(self.kspace_to_world.apply_point(plane.point),
                     self.kspace_to_world.apply_direction(plane.normal))
