"""Headset pose: location plus orientation, with motion arithmetic.

The paper's "position" means both location (x, y, z) and orientation
(three angles).  A :class:`Pose` is the rigid placement of the headset
body frame in some reference frame (world or VR-space); it is a thin
semantic wrapper over :class:`repro.geometry.RigidTransform` with the
motion-specific operations the simulators need: linear/angular deltas,
speeds, and interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import (
    RigidTransform,
    as_vec3,
    euler_to_matrix,
    is_rotation_matrix,
    matrix_to_axis_angle,
    matrix_to_euler,
    rotation_angle,
    rotation_matrix,
)


@dataclass(frozen=True)
class Pose:
    """Placement of a body frame: ``world_point = R body_point + t``."""

    position: np.ndarray
    orientation: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "position", as_vec3(self.position))
        m = np.asarray(self.orientation, dtype=float)
        if not is_rotation_matrix(m, tol=1e-6):
            raise ValueError("orientation must be a rotation matrix")
        object.__setattr__(self, "orientation", m)

    # -- constructors --------------------------------------------------------

    @classmethod
    def identity(cls) -> "Pose":
        """Body frame coincides with the reference frame."""
        return cls(np.zeros(3), np.eye(3))

    @classmethod
    def from_euler(cls, position, roll: float, pitch: float,
                   yaw: float) -> "Pose":
        """Build from a location and intrinsic XYZ Euler angles."""
        return cls(position, euler_to_matrix(roll, pitch, yaw))

    @classmethod
    def from_transform(cls, transform: RigidTransform) -> "Pose":
        """View a rigid transform as a pose."""
        return cls(transform.translation, transform.rotation)

    def as_transform(self) -> RigidTransform:
        """The body-to-reference rigid transform."""
        return RigidTransform(self.orientation, self.position)

    def euler_angles(self) -> tuple:
        """Orientation as (roll, pitch, yaw)."""
        return matrix_to_euler(self.orientation)

    # -- motion arithmetic ---------------------------------------------------

    def linear_distance_to(self, other: "Pose") -> float:
        """Meters of translation between two poses."""
        return float(np.linalg.norm(self.position - other.position))

    def angular_distance_to(self, other: "Pose") -> float:
        """Radians of rotation between two poses (geodesic)."""
        relative = other.orientation @ self.orientation.T
        return rotation_angle(relative)

    def interpolate(self, other: "Pose", fraction: float) -> "Pose":
        """Pose a ``fraction`` of the way toward ``other``.

        Linear interpolation on position and spherical (axis-angle)
        interpolation on orientation -- how the trace simulator models
        constant-rate drift between two VRH-T reports.
        """
        f = float(fraction)
        position = (1.0 - f) * self.position + f * other.position
        relative = other.orientation @ self.orientation.T
        axis, angle = matrix_to_axis_angle(relative)
        step = rotation_matrix(axis, angle * f)
        return Pose(position, step @ self.orientation)

    def moved(self, translation=None, rotation=None) -> "Pose":
        """A copy displaced by a world-frame translation and/or rotation."""
        position = self.position
        orientation = self.orientation
        if translation is not None:
            position = position + as_vec3(translation)
        if rotation is not None:
            orientation = np.asarray(rotation, dtype=float) @ orientation
        return Pose(position, orientation)

    def almost_equal(self, other: "Pose", tol: float = 1e-9) -> bool:
        """True when both poses agree within ``tol``."""
        return (np.allclose(self.position, other.position, atol=tol)
                and np.allclose(self.orientation, other.orientation,
                                atol=tol))


def speeds_between(earlier: Pose, later: Pose, dt_s: float) -> tuple:
    """(linear m/s, angular rad/s) speeds implied by two timed poses."""
    if dt_s <= 0:
        raise ValueError("time delta must be positive")
    return (earlier.linear_distance_to(later) / dt_s,
            earlier.angular_distance_to(later) / dt_s)
