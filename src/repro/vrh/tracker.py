"""VRH-T: the headset's built-in tracking system, as Cyclops sees it.

Cyclops leverages the headset's inside-out tracker rather than adding
its own (Section 3).  Two properties of VRH-T shape the whole design:

1. **Unknown frame.**  "The position reported by VRH-T is the position
   of some unknown point within VRH in an unknown coordinate space."
   The simulator makes this literal: reports are the true body pose
   composed with a hidden body-to-reference-point offset ``X`` and a
   hidden world-to-VR-space transform ``V``.  Only Section 4.2's joint
   mapping fit ever recovers what it needs of these.
2. **Finite rate and noise.**  Reports arrive every 12-13 ms (0.7 % of
   the time 14-15 ms) and carry noise -- stationary drift up to 1.79 mm
   and 0.41 mrad over 30 minutes (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .. import constants
from ..determinism import resolve_rng
from ..geometry import RigidTransform, rotation_matrix
from .pose import Pose


@dataclass
class VrhTracker:
    """Simulated Oculus-Rift-S-class tracking.

    ``vr_from_world`` (V) and ``x_offset`` (X) are the hidden frame
    unknowns; tests may read them, the TP pipeline must not.
    """

    vr_from_world: RigidTransform
    x_offset: RigidTransform
    location_noise_m: float = constants.TRACKER_LOCATION_NOISE_MAX_M / 3.0
    orientation_noise_rad: float = (
        constants.TRACKER_ORIENTATION_NOISE_MAX_RAD / 3.0)
    #: Measurement-noise source.  Pass ``rng`` or ``seed``; omitting
    #: both raises unless ``deterministic=False`` documents the
    #: OS-entropy opt-in (see :mod:`repro.determinism`).
    rng: Optional[np.random.Generator] = None
    seed: Optional[int] = None
    deterministic: bool = True

    def __post_init__(self) -> None:
        self.rng = resolve_rng(self.rng, self.seed, self.deterministic,
                               owner="VrhTracker")
        if self.location_noise_m < 0 or self.orientation_noise_rad < 0:
            raise ValueError("noise magnitudes cannot be negative")

    # -- report content ------------------------------------------------------

    def true_report_transform(self, body_pose: Pose) -> RigidTransform:
        """Noise-free reported transform: ``V o W o X``."""
        return self.vr_from_world.compose(
            body_pose.as_transform()).compose(self.x_offset)

    def report(self, body_pose: Pose) -> Pose:
        """One VRH-T position report for the current true body pose."""
        return self.noisy_pose(self.true_report_transform(body_pose))

    def noisy_pose(self, clean: RigidTransform) -> Pose:
        """Apply the tracker's measurement noise to a clean transform.

        Fault injectors compose extra transforms (drift, outliers) onto
        :meth:`true_report_transform` and then push the result through
        this method, so a faulted report consumes the tracker's RNG
        exactly like a clean one and the downstream noise statistics
        stay identical.
        """
        position = clean.translation + self.rng.normal(
            0.0, self.location_noise_m, size=3)
        if self.orientation_noise_rad > 0:
            axis = self.rng.normal(size=3)
            axis /= np.linalg.norm(axis)
            wobble = rotation_matrix(
                axis, self.rng.normal(0.0, self.orientation_noise_rad))
        else:
            wobble = np.eye(3)
        return Pose(position, wobble @ clean.rotation)

    # -- report timing -------------------------------------------------------

    def next_period_s(self) -> float:
        """Delay until the next report.

        Uniform in 12-13 ms, except 0.7 % of reports arrive after a
        14-15 ms gap -- the distribution measured on the Rift S.
        """
        if self.rng.random() < constants.TRACKER_SLOW_FRACTION:
            low = constants.TRACKER_SLOW_PERIOD_MIN_S
            high = constants.TRACKER_SLOW_PERIOD_MAX_S
        else:
            low = constants.TRACKER_PERIOD_MIN_S
            high = constants.TRACKER_PERIOD_MAX_S
        return float(self.rng.uniform(low, high))

    def report_times(self, duration_s: float,
                     start_s: float = 0.0) -> List[float]:
        """All report timestamps within ``[start_s, start_s + duration]``."""
        times = []
        t = start_s
        while t <= start_s + duration_s:
            times.append(t)
            t += self.next_period_s()
        return times
