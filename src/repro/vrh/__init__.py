"""Headset substrate: poses, the built-in tracker, and the RX assembly."""

from .headset import RxAssembly, TxAssembly
from .pose import Pose, speeds_between
from .tracker import VrhTracker

__all__ = [
    "Pose",
    "RxAssembly",
    "TxAssembly",
    "VrhTracker",
    "speeds_between",
]
