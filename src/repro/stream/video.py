"""VR video formats and their raw bandwidth demands (Section 2.1).

The paper's motivation is quantitative: "even a 2D uncompressed 8K RGB
video at 30 frames per second requires ~24 Gbps; adding the
Alpha+depth channels ... would increase the required data rates to as
high as 200 Gbps", and the life-like bound is "2.7 to 27 Tbps based on
1800 frames/sec".  This module encodes those formats so the streaming
benches can ask: which of them does a given Cyclops link carry raw?
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VideoFormat:
    """One VR video format: geometry, rate, and per-pixel payload."""

    name: str
    width: int
    height: int
    fps: float
    bits_per_pixel: int
    views: int = 1  # stereo = 2, light-field rigs more

    def __post_init__(self):
        if min(self.width, self.height, self.views) < 1:
            raise ValueError("dimensions and views must be positive")
        if self.fps <= 0 or self.bits_per_pixel <= 0:
            raise ValueError("fps and bit depth must be positive")

    @property
    def pixels_per_frame(self) -> int:
        return self.width * self.height * self.views

    @property
    def bits_per_frame(self) -> int:
        return self.pixels_per_frame * self.bits_per_pixel

    @property
    def raw_bitrate_gbps(self) -> float:
        """Uncompressed streaming rate."""
        return self.bits_per_frame * self.fps / 1e9

    def compressed_bitrate_gbps(self, ratio: float) -> float:
        """Rate after compression by ``ratio`` (e.g. 50 for HEVC-class).

        Compression shifts work onto the headset (decode) and adds
        latency -- exactly the trade-off the paper's introduction
        argues against for life-like VR.
        """
        if ratio < 1.0:
            raise ValueError("compression ratio must be >= 1")
        return self.raw_bitrate_gbps / ratio

    def fits_raw(self, link_gbps: float) -> bool:
        """True when a link can carry the format uncompressed."""
        return self.raw_bitrate_gbps <= link_gbps


# The paper's reference points (Section 2.1).
HD_1080P_60 = VideoFormat(
    name="1080p RGB 60fps", width=1920, height=1080, fps=60.0,
    bits_per_pixel=24)
UHD_4K_90_STEREO = VideoFormat(
    name="4K stereo RGB 90fps", width=3840, height=2160, fps=90.0,
    bits_per_pixel=24, views=2)
UHD_8K_30 = VideoFormat(
    name="8K RGB 30fps (paper: ~24 Gbps)", width=7680, height=4320,
    fps=30.0, bits_per_pixel=24)
UHD_8K_30_YUV420 = VideoFormat(
    name="8K YUV 4:2:0 30fps (~16 Gbps)", width=7680, height=4320,
    fps=30.0, bits_per_pixel=12)
UHD_8K_RGBAD_60 = VideoFormat(
    name="8K RGB+A+D 60fps (paper: up to ~200 Gbps class)",
    width=7680, height=4320, fps=60.0, bits_per_pixel=48)
LIFE_LIKE_1800FPS = VideoFormat(
    name="life-like 1800fps (paper [31]: 2.7-27 Tbps)",
    width=7680, height=4320, fps=1800.0, bits_per_pixel=48)

# Ordered by raw bandwidth demand.
CATALOGUE = (HD_1080P_60, UHD_8K_30_YUV420, UHD_8K_30,
             UHD_4K_90_STEREO, UHD_8K_RGBAD_60, LIFE_LIKE_1800FPS)
