"""VR streaming substrate: formats, frame transport, latency budgets.

Turns link-level connectivity (Sections 5.3-5.4) into the frame-level
and motion-to-photon quantities the paper's motivation (Section 2.1)
is written in.
"""

from .transport import (
    FrameOutcome,
    StreamReport,
    motion_to_photon_s,
    stream_over_link,
)
from .video import (
    CATALOGUE,
    HD_1080P_60,
    LIFE_LIKE_1800FPS,
    UHD_4K_90_STEREO,
    UHD_8K_30,
    UHD_8K_30_YUV420,
    UHD_8K_RGBAD_60,
    VideoFormat,
)

__all__ = [
    "CATALOGUE",
    "FrameOutcome",
    "HD_1080P_60",
    "LIFE_LIKE_1800FPS",
    "StreamReport",
    "UHD_4K_90_STEREO",
    "UHD_8K_30",
    "UHD_8K_30_YUV420",
    "UHD_8K_RGBAD_60",
    "VideoFormat",
    "motion_to_photon_s",
    "stream_over_link",
]
