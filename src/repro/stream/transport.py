"""Frame transport over a time-varying link.

Feeds a video's frame sequence through a per-slot capacity series (as
produced by the live session or the Section 5.4 trace replay): each
frame becomes available at its render time, transmits at the link's
current capacity, and is late when it is not fully delivered before
its display deadline.  This converts the link-level off-slots of
Section 5.4 into the frame-level impact the paper's user-experience
paragraph reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .video import VideoFormat


@dataclass(frozen=True)
class FrameOutcome:
    """Delivery record for one frame."""

    index: int
    render_time_s: float
    delivered_time_s: float  # inf when never delivered in the run
    deadline_s: float

    @property
    def late(self) -> bool:
        return self.delivered_time_s > self.deadline_s

    @property
    def latency_s(self) -> float:
        return self.delivered_time_s - self.render_time_s


@dataclass(frozen=True)
class StreamReport:
    """Aggregate frame-delivery quality of one run."""

    outcomes: List[FrameOutcome]
    slot_s: float

    @property
    def frames(self) -> int:
        return len(self.outcomes)

    @property
    def late_frames(self) -> int:
        return sum(1 for o in self.outcomes if o.late)

    @property
    def late_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return self.late_frames / self.frames

    def latency_percentile_s(self, q: float) -> float:
        """Delivery-latency percentile over frames that arrived."""
        latencies = [o.latency_s for o in self.outcomes
                     if np.isfinite(o.delivered_time_s)]
        if not latencies:
            return float("inf")
        return float(np.percentile(latencies, q))

    def longest_late_burst(self) -> int:
        """Longest run of consecutive late frames (stutter length)."""
        longest = current = 0
        for outcome in self.outcomes:
            current = current + 1 if outcome.late else 0
            longest = max(longest, current)
        return longest


def stream_over_link(video: VideoFormat, link_up: np.ndarray,
                     slot_s: float, capacity_gbps: float,
                     compression_ratio: float = 1.0,
                     codec_latency_s: float = 0.0,
                     deadline_frames: float = 1.0) -> StreamReport:
    """Deliver ``video`` over a slotted link-state series.

    ``link_up`` is the per-slot boolean connectivity (from
    ``SessionResult.link_up`` or ``TimeslotResult.connected``);
    ``capacity_gbps`` the goodput while up.  ``compression_ratio`` and
    ``codec_latency_s`` model a codec (encode + decode) when raw
    streaming does not fit; ``deadline_frames`` is the display budget
    in frame periods, measured from render completion.
    """
    if slot_s <= 0 or capacity_gbps <= 0:
        raise ValueError("slot length and capacity must be positive")
    frame_period = 1.0 / video.fps
    frame_bits = video.bits_per_frame / compression_ratio
    bits_per_slot = capacity_gbps * 1e9 * slot_s
    total_slots = len(link_up)

    outcomes = []
    pending: List[list] = []  # [index, render_time, remaining_bits]
    next_frame = 0
    # Iterate slots, injecting frames as their render times pass.
    for slot in range(total_slots):
        now = (slot + 1) * slot_s
        while next_frame * frame_period + codec_latency_s <= now:
            render = next_frame * frame_period
            pending.append([next_frame, render,
                            frame_bits])
            next_frame += 1
            if next_frame * frame_period > total_slots * slot_s:
                break
        budget = bits_per_slot if link_up[slot] else 0.0
        while budget > 0 and pending:
            head = pending[0]
            sent = min(budget, head[2])
            head[2] -= sent
            budget -= sent
            if head[2] <= 0:
                index, render, _ = pending.pop(0)
                outcomes.append(FrameOutcome(
                    index=index, render_time_s=render,
                    delivered_time_s=now,
                    deadline_s=render + codec_latency_s
                    + deadline_frames * frame_period))
    # Frames still pending never made it within the run.  Those whose
    # deadline already passed are genuinely late; frames whose deadline
    # lies beyond the run's end are undecided and excluded.
    run_end = total_slots * slot_s
    for index, render, _ in pending:
        deadline = (render + codec_latency_s
                    + deadline_frames * frame_period)
        if deadline > run_end:
            continue
        outcomes.append(FrameOutcome(
            index=index, render_time_s=render,
            delivered_time_s=float("inf"),
            deadline_s=deadline))
    outcomes.sort(key=lambda o: o.index)
    return StreamReport(outcomes=outcomes, slot_s=slot_s)


def motion_to_photon_s(tracking_latency_s: float,
                       render_latency_s: float,
                       transmission_latency_s: float,
                       codec_latency_s: float = 0.0,
                       display_latency_s: float = 0.011) -> float:
    """The motion-to-photon budget (Section 2.1's latency argument).

    Raw streaming keeps ``codec_latency_s`` at zero -- the reason the
    paper wants tens-of-Gbps links instead of compression.
    """
    parts = (tracking_latency_s, render_latency_s,
             transmission_latency_s, codec_latency_s, display_latency_s)
    if any(p < 0 for p in parts):
        raise ValueError("latencies cannot be negative")
    return float(sum(parts))
