"""Closed-form tolerated-speed predictions.

The paper's speed thresholds arise from one mechanism: between two
VRH-T reports the beam is stale for up to (tracking period + pointing
latency), so motion at speed ``v`` accumulates misalignment
``v * staleness`` on top of the TP residual, and the link drops when
the total excess loss eats the power margin.  This module solves that
budget in closed form; the companion bench compares the predictions to
the full closed-loop simulation (they should agree to tens of
percent, which is exactly how well the paper's own Table 1/Table 3
numbers cross-check).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import constants
from ..link import LinkDesign
from ..optics import EXCESS_DB_AT_WIDTH


@dataclass(frozen=True)
class BudgetInputs:
    """Everything the closed-form threshold needs."""

    margin_db: float
    lateral_width_m: float
    angular_width_rad: float
    curvature_radius_m: float
    staleness_s: float
    residual_lateral_m: float
    residual_angular_rad: float


def default_staleness_s() -> float:
    """Worst-case beam staleness under normal operation.

    One full tracking period (the report can be that old just before
    the next one lands) plus the control + actuation latency.
    """
    return (constants.TRACKER_PERIOD_MAX_S
            + constants.CONTROL_CHANNEL_LATENCY_S
            + constants.DAQ_LATENCY_S)


def inputs_for(design: LinkDesign, range_m: float = None,
               residual_lateral_m: float = 1.5e-3,
               residual_angular_rad: float = 1.5e-3,
               staleness_s: float = None) -> BudgetInputs:
    """Assemble the budget for a link design.

    The residual defaults are the post-TP errors a calibrated system
    achieves in this simulator (Table 2 scale); pass measured values
    for sharper predictions.
    """
    if range_m is None:
        range_m = design.design_range_m
    if staleness_s is None:
        staleness_s = default_staleness_s()
    coupling = design.coupling(range_m)
    return BudgetInputs(
        margin_db=coupling.margin_db(design.sfp.rx_sensitivity_dbm),
        lateral_width_m=coupling.lateral_width_m,
        angular_width_rad=coupling.angular_width_rad,
        curvature_radius_m=design.beam.curvature_radius_m(range_m),
        staleness_s=staleness_s,
        residual_lateral_m=residual_lateral_m,
        residual_angular_rad=residual_angular_rad,
    )


def _excess_db(inputs: BudgetInputs, lateral_m: float,
               angular_rad: float) -> float:
    lat = lateral_m / inputs.lateral_width_m
    ang = angular_rad / inputs.angular_width_rad
    return EXCESS_DB_AT_WIDTH * (lat * lat + ang * ang)


def angular_speed_limit_rad_s(inputs: BudgetInputs) -> float:
    """Max pure rotation rate keeping the link connected.

    Rotation consumes the angular budget directly:
    ``residual + omega * staleness`` must stay within the angular
    tolerance implied by the margin (after the lateral residual has
    taken its share).
    """
    lateral_cost = _excess_db(inputs, inputs.residual_lateral_m, 0.0)
    remaining = inputs.margin_db - lateral_cost
    if remaining <= 0:
        return 0.0
    tolerance = inputs.angular_width_rad * math.sqrt(
        remaining / EXCESS_DB_AT_WIDTH)
    budget = tolerance - inputs.residual_angular_rad
    if budget <= 0:
        return 0.0
    return budget / inputs.staleness_s


def linear_speed_limit_m_s(inputs: BudgetInputs) -> float:
    """Max pure translation rate keeping the link connected.

    A stale translation ``d = v * staleness`` costs on both axes: it
    slides the receiver across the beam profile (lateral term) and,
    for a diverging beam, rotates the arriving wavefront by
    ``d / R`` (angular term).  Solved by bisection on the total
    excess-loss budget.
    """
    def total_excess(v):
        drift = v * inputs.staleness_s
        lateral = inputs.residual_lateral_m + drift
        angular = inputs.residual_angular_rad
        if math.isfinite(inputs.curvature_radius_m):
            angular = angular + drift / inputs.curvature_radius_m
        return _excess_db(inputs, lateral, angular)

    if total_excess(0.0) >= inputs.margin_db:
        return 0.0
    lo, hi = 0.0, 10.0
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if total_excess(mid) < inputs.margin_db:
            lo = mid
        else:
            hi = mid
    return lo


def mixed_speed_feasible(inputs: BudgetInputs, linear_m_s: float,
                         angular_rad_s: float) -> bool:
    """Whether simultaneous speeds stay within the budget.

    The Fig. 14/15 mixed-motion question, answered in closed form.
    """
    drift_lat = linear_m_s * inputs.staleness_s
    drift_ang = angular_rad_s * inputs.staleness_s
    lateral = inputs.residual_lateral_m + drift_lat
    angular = inputs.residual_angular_rad + drift_ang
    if math.isfinite(inputs.curvature_radius_m):
        angular += drift_lat / inputs.curvature_radius_m
    return _excess_db(inputs, lateral, angular) < inputs.margin_db
