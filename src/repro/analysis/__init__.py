"""Closed-form analysis: tolerated-speed budgets and predictions."""

from .thresholds import (
    BudgetInputs,
    angular_speed_limit_rad_s,
    default_staleness_s,
    inputs_for,
    linear_speed_limit_m_s,
    mixed_speed_feasible,
)

__all__ = [
    "BudgetInputs",
    "angular_speed_limit_rad_s",
    "default_staleness_s",
    "inputs_for",
    "linear_speed_limit_m_s",
    "mixed_speed_feasible",
]
