"""Command-line interface: ``python -m repro <command>``.

Small, dependency-free front door to the common workflows so a user
can poke the system without writing code::

    python -m repro table1            # Table 1 tolerances
    python -m repro fig11             # the beam-diameter sweep
    python -m repro calibrate         # run the Section 4 pipeline
    python -m repro traces            # Section 5.4 availability (subset)
    python -m repro safety            # eye-safety reports
    python -m repro plan --width 4 --depth 3   # ceiling TX plan
    python -m repro formats           # the VR-format bandwidth ladder
    python -m repro bench             # time the trace pipeline
    python -m repro chaos             # fault-injection robustness sweep
    python -m repro lint              # determinism/units static analysis
    python -m repro analyze           # whole-program layering/unit/RNG flow
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_table1(args):
    from .link import evaluate, link_10g_collimated, link_10g_diverging
    from .reporting import TextTable, fmt_float
    table = TextTable(["design", "TX tol (mrad)", "RX tol (mrad)",
                       "peak (dBm)"])
    for design in (link_10g_collimated(20e-3),
                   link_10g_diverging(20e-3)):
        r = evaluate(design)
        table.add_row(design.name,
                      fmt_float(r.tx_angular_tolerance_rad * 1e3),
                      fmt_float(r.rx_angular_tolerance_rad * 1e3),
                      fmt_float(r.peak_power_dbm, 1))
    print(table.render())
    return 0


def _cmd_fig11(args):
    from .link import diameter_sweep, link_10g_diverging
    from .reporting import TextTable, fmt_float
    diameters = np.arange(8e-3, 33e-3, 2e-3)
    table = TextTable(["beam at RX (mm)", "RX tol (mrad)",
                       "TX tol (mrad)", "peak (dBm)"])
    for r in diameter_sweep(link_10g_diverging, diameters, 1.75):
        table.add_row(fmt_float(r.beam_diameter_at_rx_m * 1e3, 0),
                      fmt_float(r.rx_angular_tolerance_rad * 1e3),
                      fmt_float(r.tx_angular_tolerance_rad * 1e3),
                      fmt_float(r.peak_power_dbm, 1))
    print(table.render())
    return 0


def _cmd_calibrate(args):
    from .core import point
    from .simulate import Testbed
    testbed = Testbed(seed=args.seed)
    print(f"calibrating (seed {args.seed})...")
    outcome = testbed.calibrate()
    connected = 0
    for pose in testbed.evaluation_poses(args.trials):
        command = point(outcome.system, testbed.tracker.report(pose))
        testbed.apply_command(command)
        connected += testbed.channel.evaluate(pose).connected
    print(f"realign trials at optimal: {connected}/{args.trials}")
    return 0 if connected == args.trials else 1


def _cmd_traces(args):
    from .motion import generate_dataset
    from .simulate import analyze, report, simulate_dataset
    traces = generate_dataset(viewers=args.viewers, videos=args.videos,
                              workers=args.workers)
    results = simulate_dataset(traces, workers=args.workers)
    availability = report(results)
    clustering = analyze(results)
    print(f"traces: {len(traces)}")
    print(f"overall availability: "
          f"{availability.overall_availability * 100:.2f} % "
          f"(paper: 98.6)")
    print(f"range: {availability.worst * 100:.2f} - "
          f"{availability.best * 100:.2f} %")
    print(f"off-slots in frames with <10 offs: "
          f"{clustering.fraction_in_frames_below(10) * 100:.0f} % "
          f"(paper: >60)")
    return 0


def _cmd_safety(args):
    from .link import link_10g_collimated, link_10g_diverging, link_25g
    from .optics import assess_design
    from .reporting import TextTable, fmt_float
    table = TextTable(["design", "launched (dBm)", "limit (mW)",
                       "hazard dist (m)", "safe @ 1.75 m"])
    for design in (link_10g_diverging(), link_10g_collimated(),
                   link_25g()):
        r = assess_design(design)
        table.add_row(design.name, fmt_float(r.launched_power_dbm, 1),
                      fmt_float(r.class1_limit_mw, 1),
                      fmt_float(r.hazard_distance_m, 2),
                      "yes" if r.safe_at_link_range else "NO")
    print(table.render())
    return 0


def _cmd_plan(args):
    from .plan import CoverageConstraints, Room, plan_greedy
    room = Room(width_m=args.width, depth_m=args.depth,
                ceiling_height_m=args.ceiling)
    plan = plan_greedy(room, CoverageConstraints(),
                       target_fraction=args.coverage,
                       resolution_m=0.2)
    print(f"{len(plan.tx_positions)} TXs -> "
          f"{plan.coverage_fraction(0.2) * 100:.0f} % coverage, "
          f"{plan.redundancy_fraction(0.2) * 100:.0f} % redundant")
    for i, (x, y) in enumerate(plan.tx_positions):
        print(f"  TX {i}: ({x:.2f}, {y:.2f}) m")
    return 0


def _cmd_formats(args):
    from .reporting import TextTable, fmt_float
    from .stream import CATALOGUE
    table = TextTable(["format", "raw Gbps", "fits 10G", "fits 25G"])
    for fmt in CATALOGUE:
        table.add_row(fmt.name.split(" (")[0],
                      fmt_float(fmt.raw_bitrate_gbps, 1),
                      "yes" if fmt.fits_raw(9.4) else "no",
                      "yes" if fmt.fits_raw(23.5) else "no")
    print(table.render())
    return 0


def _cmd_bench(args):
    """Time generate -> simulate -> report and write a JSON record."""
    import json
    import time

    from .motion import generate_dataset
    from .simulate import report, simulate_dataset, simulate_trace
    from .simulate.timeslot import _simulate_trace_reference

    t0 = time.perf_counter()
    traces = generate_dataset(viewers=args.viewers, videos=args.videos,
                              duration_s=args.duration,
                              workers=args.workers)
    t_generate = time.perf_counter() - t0

    t0 = time.perf_counter()
    results = simulate_dataset(traces, workers=args.workers)
    t_simulate = time.perf_counter() - t0

    t0 = time.perf_counter()
    availability = report(results)
    t_report = time.perf_counter() - t0

    total_slots = sum(r.slots for r in results)
    wall_s = t_generate + t_simulate + t_report

    # Speedup of the vectorized slot model over the retained reference
    # loop, measured on a subset (the loop is the slow part).  Both
    # sides take the best of several passes after a warmup so GC and
    # scheduler noise cannot skew the ratio.
    def best_of(body, repeats):
        body()  # warmup
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            body()
            best = min(best, time.perf_counter() - t0)
        return best

    subset = traces[:max(1, min(args.ref_traces, len(traces)))]
    t_loop = best_of(
        lambda: [_simulate_trace_reference(t) for t in subset], 3)
    t_vec = best_of(lambda: [simulate_trace(t) for t in subset], 15)
    speedup = t_loop / t_vec if t_vec > 0 else float("inf")

    payload = {
        "pipeline": "generate->simulate->report",
        "viewers": args.viewers,
        "videos": args.videos,
        "duration_s": args.duration,
        "workers": args.workers,
        "traces": len(traces),
        "slots": total_slots,
        "wall_s": wall_s,
        "generate_s": t_generate,
        "simulate_s": t_simulate,
        "report_s": t_report,
        "traces_per_s": len(traces) / wall_s if wall_s > 0 else 0.0,
        "slots_per_s": total_slots / wall_s if wall_s > 0 else 0.0,
        "speedup_vs_reference": speedup,
        "reference_subset_traces": len(subset),
        "overall_availability": availability.overall_availability,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"traces: {len(traces)} ({total_slots} slots)")
    print(f"wall: {wall_s:.2f} s (generate {t_generate:.2f}, "
          f"simulate {t_simulate:.2f}, report {t_report:.2f})")
    print(f"throughput: {payload['traces_per_s']:.1f} traces/s, "
          f"{payload['slots_per_s']:.0f} slots/s")
    print(f"slot model speedup vs reference loop: {speedup:.1f}x")
    print(f"wrote {args.output}")
    return 0


def _cmd_chaos(args):
    """Sweep fault scenarios, supervised vs bare, write BENCH_chaos.json."""
    import json
    import time

    from .faults.chaos import get_scenarios, run_chaos, sweep_payload
    from .reporting import TextTable, fmt_float

    names = args.scenarios.split(",") if args.scenarios else None
    try:
        scenarios = get_scenarios(names)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    t0 = time.perf_counter()
    records = run_chaos(scenarios, workers=args.workers)
    wall_s = time.perf_counter() - t0

    table = TextTable(["scenario", "bare up", "supervised up", "gain",
                       "MTTR (s)", "recoveries"])
    for r in records:
        table.add_row(r["name"],
                      fmt_float(r["unsupervised"]["availability"], 3),
                      fmt_float(r["supervised"]["availability"], 3),
                      fmt_float(r["uptime_gain"], 3),
                      fmt_float(r["supervised"]["mttr_s"], 3),
                      str(r["supervised"]["recovery_actions"]))
    print(table.render())

    # Wall time is printed but kept OUT of the payload so the file is
    # byte-identical for any --workers setting.
    payload = sweep_payload(records)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"mean uptime gain: {payload['mean_uptime_gain']:+.3f}")
    print(f"wall: {wall_s:.2f} s (workers={args.workers})")
    print(f"wrote {args.output}")
    return 0


def _cmd_lint(args):
    """Run the repro.devtools static-analysis engine."""
    from .devtools.cli import run_lint
    return run_lint(args)


def _cmd_analyze(args):
    """Run the repro.devtools.program whole-program analyzer."""
    from .devtools.program.cli import run_analyze
    return run_analyze(args)


def _cmd_scenarios(args):
    from .reporting import TextTable
    from .simulate import list_scenarios
    table = TextTable(["id", "paper", "description"])
    for scenario in list_scenarios():
        table.add_row(scenario.scenario_id, scenario.paper_ref,
                      scenario.description)
    print(table.render())
    return 0


def _cmd_scenario(args):
    from .simulate import get_scenario
    try:
        scenario = get_scenario(args.scenario_id)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    print(f"{scenario.paper_ref}: {scenario.description}")
    print(f"full regeneration: pytest {scenario.bench} "
          f"--benchmark-only -s")
    for name, value in scenario.run_quick().items():
        print(f"  {name} = {value:.4g}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cyclops (SIGCOMM 2022) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1 link tolerances"
                   ).set_defaults(func=_cmd_table1)
    sub.add_parser("fig11", help="Fig. 11 beam-diameter sweep"
                   ).set_defaults(func=_cmd_fig11)

    calibrate = sub.add_parser("calibrate",
                               help="run the Section 4 pipeline")
    calibrate.add_argument("--seed", type=int, default=7)
    calibrate.add_argument("--trials", type=int, default=10)
    calibrate.set_defaults(func=_cmd_calibrate)

    traces = sub.add_parser("traces",
                            help="Section 5.4 trace availability")
    traces.add_argument("--viewers", type=int, default=10)
    traces.add_argument("--videos", type=int, default=10)
    traces.add_argument("--workers", type=int, default=1)
    traces.set_defaults(func=_cmd_traces)

    sub.add_parser("safety", help="eye-safety reports"
                   ).set_defaults(func=_cmd_safety)

    plan = sub.add_parser("plan", help="ceiling TX coverage plan")
    plan.add_argument("--width", type=float, default=3.0)
    plan.add_argument("--depth", type=float, default=3.0)
    plan.add_argument("--ceiling", type=float, default=2.6)
    plan.add_argument("--coverage", type=float, default=0.95)
    plan.set_defaults(func=_cmd_plan)

    sub.add_parser("formats", help="VR format bandwidth ladder"
                   ).set_defaults(func=_cmd_formats)

    bench = sub.add_parser(
        "bench", help="time the trace pipeline, write a JSON record")
    bench.add_argument("--viewers", type=int, default=10)
    bench.add_argument("--videos", type=int, default=10)
    bench.add_argument("--duration", type=float, default=60.0)
    bench.add_argument("--workers", type=int, default=1)
    bench.add_argument("--ref-traces", type=int, default=5,
                       help="traces timed through the reference loop")
    bench.add_argument("--output", default="BENCH_trace_pipeline.json")
    bench.set_defaults(func=_cmd_bench)

    chaos = sub.add_parser(
        "chaos", help="fault-injection sweep, write BENCH_chaos.json")
    chaos.add_argument("--scenarios", default=None,
                       help="comma-separated scenario names (default all)")
    chaos.add_argument("--workers", type=int, default=1)
    chaos.add_argument("--output", default="BENCH_chaos.json")
    chaos.set_defaults(func=_cmd_chaos)

    lint = sub.add_parser(
        "lint", help="determinism/units static analysis (repro.devtools)")
    from .devtools.cli import add_lint_arguments
    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help="whole-program layering/unit-flow/RNG-taint analysis")
    from .devtools.program.cli import add_analyze_arguments
    add_analyze_arguments(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    sub.add_parser("scenarios", help="list the experiment registry"
                   ).set_defaults(func=_cmd_scenarios)
    scenario = sub.add_parser("scenario",
                              help="quick-run one experiment")
    scenario.add_argument("scenario_id")
    scenario.set_defaults(func=_cmd_scenario)
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
