"""Command-line interface: ``python -m repro <command>``.

Small, dependency-free front door to the common workflows so a user
can poke the system without writing code::

    python -m repro table1            # Table 1 tolerances
    python -m repro fig11             # the beam-diameter sweep
    python -m repro calibrate         # run the Section 4 pipeline
    python -m repro traces            # Section 5.4 availability (subset)
    python -m repro safety            # eye-safety reports
    python -m repro plan --width 4 --depth 3   # ceiling TX plan
    python -m repro formats           # the VR-format bandwidth ladder
    python -m repro bench             # time the trace pipeline
    python -m repro chaos             # fault-injection robustness sweep
    python -m repro sweep --checkpoint ck   # crash-safe resumable sweep
    python -m repro lint              # determinism/units static analysis
    python -m repro analyze           # whole-program layering/unit/RNG flow

``bench``, ``chaos``, and ``sweep`` publish their JSON records
atomically (tmp + rename) and defer SIGINT/SIGTERM to checkpoint
boundaries, exiting ``128 + signum`` with no torn artifacts; ``sweep``
additionally checkpoints per work unit and resumes byte-identically
with ``--resume``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_table1(args):
    from .link import evaluate, link_10g_collimated, link_10g_diverging
    from .reporting import TextTable, fmt_float
    table = TextTable(["design", "TX tol (mrad)", "RX tol (mrad)",
                       "peak (dBm)"])
    for design in (link_10g_collimated(20e-3),
                   link_10g_diverging(20e-3)):
        r = evaluate(design)
        table.add_row(design.name,
                      fmt_float(r.tx_angular_tolerance_rad * 1e3),
                      fmt_float(r.rx_angular_tolerance_rad * 1e3),
                      fmt_float(r.peak_power_dbm, 1))
    print(table.render())
    return 0


def _cmd_fig11(args):
    from .link import diameter_sweep, link_10g_diverging
    from .reporting import TextTable, fmt_float
    diameters = np.arange(8e-3, 33e-3, 2e-3)
    table = TextTable(["beam at RX (mm)", "RX tol (mrad)",
                       "TX tol (mrad)", "peak (dBm)"])
    for r in diameter_sweep(link_10g_diverging, diameters, 1.75):
        table.add_row(fmt_float(r.beam_diameter_at_rx_m * 1e3, 0),
                      fmt_float(r.rx_angular_tolerance_rad * 1e3),
                      fmt_float(r.tx_angular_tolerance_rad * 1e3),
                      fmt_float(r.peak_power_dbm, 1))
    print(table.render())
    return 0


def _cmd_calibrate(args):
    from .core import point
    from .simulate import Testbed
    testbed = Testbed(seed=args.seed)
    print(f"calibrating (seed {args.seed})...")
    outcome = testbed.calibrate()
    connected = 0
    for pose in testbed.evaluation_poses(args.trials):
        command = point(outcome.system, testbed.tracker.report(pose))
        testbed.apply_command(command)
        connected += testbed.channel.evaluate(pose).connected
    print(f"realign trials at optimal: {connected}/{args.trials}")
    return 0 if connected == args.trials else 1


def _cmd_traces(args):
    from .motion import generate_dataset
    from .simulate import analyze, report, simulate_dataset
    traces = generate_dataset(viewers=args.viewers, videos=args.videos,
                              workers=args.workers)
    results = simulate_dataset(traces, workers=args.workers)
    availability = report(results)
    clustering = analyze(results)
    print(f"traces: {len(traces)}")
    print(f"overall availability: "
          f"{availability.overall_availability * 100:.2f} % "
          f"(paper: 98.6)")
    print(f"range: {availability.worst * 100:.2f} - "
          f"{availability.best * 100:.2f} %")
    print(f"off-slots in frames with <10 offs: "
          f"{clustering.fraction_in_frames_below(10) * 100:.0f} % "
          f"(paper: >60)")
    return 0


def _cmd_safety(args):
    from .link import link_10g_collimated, link_10g_diverging, link_25g
    from .optics import assess_design
    from .reporting import TextTable, fmt_float
    table = TextTable(["design", "launched (dBm)", "limit (mW)",
                       "hazard dist (m)", "safe @ 1.75 m"])
    for design in (link_10g_diverging(), link_10g_collimated(),
                   link_25g()):
        r = assess_design(design)
        table.add_row(design.name, fmt_float(r.launched_power_dbm, 1),
                      fmt_float(r.class1_limit_mw, 1),
                      fmt_float(r.hazard_distance_m, 2),
                      "yes" if r.safe_at_link_range else "NO")
    print(table.render())
    return 0


def _cmd_plan(args):
    from .plan import CoverageConstraints, Room, plan_greedy
    room = Room(width_m=args.width, depth_m=args.depth,
                ceiling_height_m=args.ceiling)
    plan = plan_greedy(room, CoverageConstraints(),
                       target_fraction=args.coverage,
                       resolution_m=0.2)
    print(f"{len(plan.tx_positions)} TXs -> "
          f"{plan.coverage_fraction(0.2) * 100:.0f} % coverage, "
          f"{plan.redundancy_fraction(0.2) * 100:.0f} % redundant")
    for i, (x, y) in enumerate(plan.tx_positions):
        print(f"  TX {i}: ({x:.2f}, {y:.2f}) m")
    return 0


def _cmd_formats(args):
    from .reporting import TextTable, fmt_float
    from .stream import CATALOGUE
    table = TextTable(["format", "raw Gbps", "fits 10G", "fits 25G"])
    for fmt in CATALOGUE:
        table.add_row(fmt.name.split(" (")[0],
                      fmt_float(fmt.raw_bitrate_gbps, 1),
                      "yes" if fmt.fits_raw(9.4) else "no",
                      "yes" if fmt.fits_raw(23.5) else "no")
    print(table.render())
    return 0


def _bench_machine() -> dict:
    """Machine metadata stamped into every bench record."""
    import os
    import platform

    import scipy
    affinity = (len(os.sched_getaffinity(0))
                if hasattr(os, "sched_getaffinity") else None)
    return {
        "cpu_count": os.cpu_count(),
        "cpu_affinity": affinity,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
    }


def _bench_row(engine: str, workers: int, args, repeats: int) -> dict:
    """Time one (engine, transport, workers) pipeline configuration.

    Each row runs generate -> simulate -> aggregate end to end,
    ``repeats`` times, keeping the best wall clock per stage (best-of
    smooths allocator and scheduler noise; the stages are pure, so
    repetition cannot change the result).  Any
    :class:`~repro.parallel.ParallelFallbackWarning` raised while the
    row runs is recorded in the ``serial_fallback`` field instead of
    hiding in the warning stream.
    """
    import time
    import warnings

    from .parallel import ParallelFallbackWarning

    def loop_pass():
        from .motion import generate_dataset
        from .simulate import report, simulate_dataset
        t0 = time.perf_counter()
        traces = generate_dataset(
            viewers=args.viewers, videos=args.videos,
            duration_s=args.duration, workers=workers, engine="loop")
        t_gen = time.perf_counter() - t0
        t0 = time.perf_counter()
        results = simulate_dataset(traces, workers=workers,
                                   engine="loop")
        t_sim = time.perf_counter() - t0
        t0 = time.perf_counter()
        availability = report(results)
        t_rep = time.perf_counter() - t0
        slots = sum(r.slots for r in results)
        return (t_gen, t_sim, t_rep, len(traces), slots,
                availability.overall_availability)

    def batch_pass():
        from .motion import generate_batch
        from .simulate import simulate_batch
        t0 = time.perf_counter()
        batch = generate_batch(
            viewers=args.viewers, videos=args.videos,
            duration_s=args.duration, workers=workers, columns="steps")
        t_gen = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = simulate_batch(batch, workers=workers)
        t_sim = time.perf_counter() - t0
        t0 = time.perf_counter()
        connected = result.connected
        overall = (int(np.count_nonzero(connected)) / connected.size
                   if connected.size else 0.0)
        t_rep = time.perf_counter() - t0
        return (t_gen, t_sim, t_rep, len(result), connected.size,
                overall)

    one_pass = loop_pass if engine == "loop" else batch_pass
    fallbacks = 0
    best = None
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", ParallelFallbackWarning)
        for _ in range(max(1, repeats)):
            sample = one_pass()
            if best is None or sum(sample[:3]) < sum(best[:3]):
                best = sample
        fallbacks = sum(
            1 for w in caught
            if issubclass(w.category, ParallelFallbackWarning))
    t_gen, t_sim, t_rep, traces, slots, overall = best
    wall_s = t_gen + t_sim + t_rep
    transport = "none" if workers <= 1 else \
        ("pickle" if engine == "loop" else "shm")
    return {
        "engine": engine,
        "transport": transport,
        "workers": workers,
        "traces": traces,
        "slots": slots,
        # The declared computation dtype of the step columns both
        # engines run over (every engine allocation passes dtype=
        # explicitly; rule Y002 keeps it that way).
        "dtype": np.dtype(np.float64).name,
        "wall_s": wall_s,
        "generate_s": t_gen,
        "simulate_s": t_sim,
        "report_s": t_rep,
        "traces_per_s": traces / wall_s if wall_s > 0 else 0.0,
        "slots_per_s": slots / wall_s if wall_s > 0 else 0.0,
        "serial_fallback": fallbacks > 0,
        "overall_availability": overall,
    }


def _cmd_bench(args):
    """Bench the trace pipeline per (engine, transport, workers) row.

    Four rows cover the throughput matrix: the per-trace loop engine
    and the batched tensor engine, each single-worker and across a
    process pool (pickle transport for the loop's object results, the
    shared-memory array transport for the batch's tensors).  Every row
    must report the identical overall availability — the bench doubles
    as an end-to-end determinism check.  ``--require-batch-speedup X``
    turns the record into a gate: exit nonzero when the batch stack's
    slots/s falls below ``X`` times the loop stack's at the same
    worker count.
    """
    from .orchestrator.signals import SignalGuard, SweepInterrupted
    try:
        with SignalGuard() as guard:
            return _bench_run(args, guard)
    except SweepInterrupted as exc:
        print(f"interrupted by signal {exc.signum}; partial bench rows "
              "discarded (the record publishes atomically at the end)")
        return exc.exit_code


def _bench_run(args, guard):
    """The bench body; ``guard.check()`` between rows keeps Ctrl-C clean."""
    import time

    from .parallel import default_workers
    from .store import write_json_atomic

    if args.quick:
        # The pinned CI preset: the paper's 500-trace corpus with
        # best-of-3 rows and a tiny reference subset.  The transport
        # comparison needs the full corpus — on a small one the pool
        # spawn cost dominates and the pickle/shm difference drowns.
        args.viewers, args.videos = 50, 10
        args.duration = 60.0
        args.ref_traces = min(args.ref_traces, 2)
        repeats = 3
    else:
        repeats = args.repeats

    pool_workers = args.workers if args.workers else \
        max(2, default_workers())

    row_plan = [("loop", 1), ("batch", 1)]
    if pool_workers > 1:
        row_plan += [("loop", pool_workers), ("batch", pool_workers)]
    rows = []
    for engine, row_workers in row_plan:
        guard.check()
        rows.append(_bench_row(engine, row_workers, args, repeats))

    # Bitwise contract: every engine/transport/worker combination must
    # agree on the availability number exactly.
    availabilities = {row["overall_availability"] for row in rows}
    if len(availabilities) != 1:
        print("ERROR: engines disagree on overall availability: "
              + ", ".join(f"{row['engine']}/{row['workers']}w="
                          f"{row['overall_availability']!r}"
                          for row in rows))
        return 1

    # Speedup of the vectorized slot model over the retained reference
    # loop, measured on a subset (the loop is the slow part).  Both
    # sides take the best of several passes after a warmup so GC and
    # scheduler noise cannot skew the ratio.
    from .motion import generate_dataset
    from .simulate import simulate_trace
    from .simulate.timeslot import _simulate_trace_reference

    def best_of(body, n):
        body()  # warmup
        best = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            body()
            best = min(best, time.perf_counter() - t0)
        return best

    guard.check()
    subset = generate_dataset(
        viewers=1, videos=max(1, min(args.ref_traces, args.videos)),
        duration_s=args.duration)
    t_loop = best_of(
        lambda: [_simulate_trace_reference(t) for t in subset], 3)
    t_vec = best_of(lambda: [simulate_trace(t) for t in subset], 15)
    speedup = t_loop / t_vec if t_vec > 0 else float("inf")

    by_key = {(row["engine"], row["workers"]): row for row in rows}
    loop1 = by_key[("loop", 1)]
    batch1 = by_key[("batch", 1)]
    engine_speedup = (batch1["slots_per_s"] / loop1["slots_per_s"]
                      if loop1["slots_per_s"] > 0 else float("inf"))
    stack_speedup = None
    pool_fallback = False
    if pool_workers > 1:
        loop_n = by_key[("loop", pool_workers)]
        batch_n = by_key[("batch", pool_workers)]
        pool_fallback = (loop_n["serial_fallback"]
                         or batch_n["serial_fallback"])
        if loop_n["slots_per_s"] > 0:
            stack_speedup = (batch_n["slots_per_s"]
                             / loop_n["slots_per_s"])

    payload = {
        "pipeline": "generate->simulate->report",
        "viewers": args.viewers,
        "videos": args.videos,
        "duration_s": args.duration,
        "workers": pool_workers,
        "quick": bool(args.quick),
        "repeats": repeats,
        "machine": _bench_machine(),
        "rows": rows,
        # Headline (legacy) fields describe the pre-existing pipeline:
        # the single-worker loop engine, as every earlier record did.
        "traces": loop1["traces"],
        "slots": loop1["slots"],
        "wall_s": loop1["wall_s"],
        "generate_s": loop1["generate_s"],
        "simulate_s": loop1["simulate_s"],
        "report_s": loop1["report_s"],
        "traces_per_s": loop1["traces_per_s"],
        "slots_per_s": loop1["slots_per_s"],
        "speedup_vs_reference": speedup,
        "reference_subset_traces": len(subset),
        "overall_availability": loop1["overall_availability"],
        "batch_engine_speedup_single_worker": engine_speedup,
        "batch_stack_speedup_parallel": stack_speedup,
    }
    write_json_atomic(args.output, payload)

    for row in rows:
        flag = " (serial fallback!)" if row["serial_fallback"] else ""
        print(f"{row['engine']:>5s} x{row['workers']} "
              f"[{row['transport']:>6s}]: {row['wall_s']:.2f} s "
              f"(gen {row['generate_s']:.2f}, sim "
              f"{row['simulate_s']:.2f}), "
              f"{row['slots_per_s'] / 1e6:.1f}M slots/s{flag}")
    print(f"slot model speedup vs reference loop: {speedup:.1f}x")
    print(f"batch engine vs loop engine (1 worker): "
          f"{engine_speedup:.2f}x")
    if stack_speedup is not None:
        print(f"batch+shm vs loop+pickle ({pool_workers} workers): "
              f"{stack_speedup:.2f}x")
    print(f"wrote {args.output}")

    if args.require_batch_speedup is not None:
        if pool_workers <= 1 or stack_speedup is None:
            print("speedup gate skipped: no pooled rows to compare")
        elif pool_fallback:
            print("speedup gate skipped: process pool unavailable "
                  "(serial fallback recorded in rows)")
        elif stack_speedup < args.require_batch_speedup:
            print(f"FAIL: batch stack speedup {stack_speedup:.2f}x < "
                  f"required {args.require_batch_speedup:.2f}x")
            return 1
        else:
            print(f"speedup gate passed: {stack_speedup:.2f}x >= "
                  f"{args.require_batch_speedup:.2f}x")
    return 0


def _cmd_chaos(args):
    """Sweep fault scenarios, supervised vs bare, write BENCH_chaos.json."""
    import time

    from .faults.chaos import get_scenarios, run_chaos, sweep_payload
    from .orchestrator.signals import SignalGuard
    from .reporting import TextTable, fmt_float
    from .store import write_json_atomic

    names = args.scenarios.split(",") if args.scenarios else None
    try:
        scenarios = get_scenarios(names)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    # The sweep is one compute call, so a first Ctrl-C defers: the
    # finished records still publish (atomically) before exiting
    # 128+signum.  A second Ctrl-C aborts the blunt way.
    with SignalGuard() as guard:
        t0 = time.perf_counter()
        records = run_chaos(scenarios, workers=args.workers)
        wall_s = time.perf_counter() - t0

    table = TextTable(["scenario", "bare up", "supervised up", "gain",
                       "MTTR (s)", "recoveries"])
    for r in records:
        table.add_row(r["name"],
                      fmt_float(r["unsupervised"]["availability"], 3),
                      fmt_float(r["supervised"]["availability"], 3),
                      fmt_float(r["uptime_gain"], 3),
                      fmt_float(r["supervised"]["mttr_s"], 3),
                      str(r["supervised"]["recovery_actions"]))
    print(table.render())

    # Wall time is printed but kept OUT of the payload so the file is
    # byte-identical for any --workers setting.
    payload = sweep_payload(records)
    write_json_atomic(args.output, payload)
    print(f"mean uptime gain: {payload['mean_uptime_gain']:+.3f}")
    print(f"wall: {wall_s:.2f} s (workers={args.workers})")
    print(f"wrote {args.output}")
    if guard.triggered:
        print(f"interrupted by signal {guard.triggered}; record "
              "published before exit")
        return guard.exit_code
    return 0


def _cmd_sweep(args):
    """Run (or resume) a crash-safe checkpointed sweep.

    Work units execute in killable child processes, spool into the
    checkpoint's column store as they finish, and the final corpus +
    ``SWEEP_<kind>.json`` payload are byte-identical no matter how
    many times the run was interrupted — SIGKILL included — and
    resumed with ``--resume``.  Exit codes: 0 done, 1 units failed,
    2 bad configuration, 128+signum when interrupted.
    """
    import time

    from .orchestrator import (
        SignalGuard,
        SweepConfigError,
        SweepError,
        SweepInterrupted,
        SweepRunner,
        UnitFailedError,
        build_sweep,
        list_kinds,
    )
    from .store import write_json_atomic

    names = args.scenarios.split(",") if args.scenarios else None
    try:
        spec = build_sweep(args.kind, seed=args.seed, units=args.units,
                           work=args.work, sleep_s=args.sleep_s,
                           trials=args.trials, scenarios=names)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc))
        print(f"available kinds: {', '.join(list_kinds())}")
        return 2

    output = args.output if args.output else f"SWEEP_{args.kind}.json"
    t0 = time.perf_counter()
    baseline = {"done": 0}

    def progress(done, total, unit):
        elapsed = time.perf_counter() - t0
        fresh = done - baseline["done"]
        remaining = total - done
        if fresh > 0 and remaining > 0:
            eta = elapsed / fresh * remaining
            tail = f"ETA {eta:5.1f} s"
        else:
            tail = "done" if remaining == 0 else "ETA ?"
        print(f"[{done:>{len(str(total))}}/{total}] {unit.label} "
              f"({elapsed:.1f} s elapsed, {tail})")

    try:
        with SignalGuard() as guard:
            runner = SweepRunner(
                spec, args.checkpoint, workers=args.workers,
                timeout_s=args.timeout_s, retries=args.retries,
                progress=progress, stop_check=guard.check)
            status = runner.prepare(resume=args.resume)
            baseline["done"] = status.done
            print(f"sweep {spec.name!r}: {status.total} units, "
                  f"{status.done} already checkpointed, "
                  f"{status.pending} to run "
                  f"(workers={runner.workers})")
            if status.reaped_tmp:
                print(f"reaped {status.reaped_tmp} orphaned tmp "
                      "group(s) from a previous crash")
            if status.journal_dropped_bytes:
                print(f"dropped {status.journal_dropped_bytes} torn "
                      "journal byte(s); affected units re-run")
            result = runner.run()
            guard.check()
            _, payload = runner.finalize(group=args.group)
    except SweepConfigError as exc:
        print(str(exc))
        return 2
    except UnitFailedError as exc:
        print(str(exc))
        return 1
    except SweepError as exc:
        print(str(exc))
        return 1
    except SweepInterrupted as exc:
        print(f"interrupted by signal {exc.signum}; checkpoint at "
              f"{args.checkpoint} is consistent — rerun with --resume")
        return exc.exit_code

    write_json_atomic(output, payload)
    wall_s = time.perf_counter() - t0
    print(f"corpus group {args.group!r}: {payload['units']} rows, "
          f"sha256 {payload['corpus_sha256'][:16]}…")
    print(f"ran {result.ran}, skipped {result.skipped} "
          f"(infra retries {result.infra_retries}, fn retries "
          f"{result.fn_retries}, escalations {result.escalations})")
    print(f"wall: {wall_s:.2f} s")
    print(f"wrote {output}")
    return 0


def _cmd_lint(args):
    """Run the repro.devtools static-analysis engine."""
    from .devtools.cli import run_lint
    return run_lint(args)


def _cmd_analyze(args):
    """Run the repro.devtools.program whole-program analyzer."""
    from .devtools.program.cli import run_analyze
    return run_analyze(args)


def _cmd_scenarios(args):
    from .reporting import TextTable
    from .simulate import list_scenarios
    table = TextTable(["id", "paper", "description"])
    for scenario in list_scenarios():
        table.add_row(scenario.scenario_id, scenario.paper_ref,
                      scenario.description)
    print(table.render())
    return 0


def _cmd_scenario(args):
    from .simulate import get_scenario
    try:
        scenario = get_scenario(args.scenario_id)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    print(f"{scenario.paper_ref}: {scenario.description}")
    print(f"full regeneration: pytest {scenario.bench} "
          f"--benchmark-only -s")
    for name, value in scenario.run_quick().items():
        print(f"  {name} = {value:.4g}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cyclops (SIGCOMM 2022) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1 link tolerances"
                   ).set_defaults(func=_cmd_table1)
    sub.add_parser("fig11", help="Fig. 11 beam-diameter sweep"
                   ).set_defaults(func=_cmd_fig11)

    calibrate = sub.add_parser("calibrate",
                               help="run the Section 4 pipeline")
    calibrate.add_argument("--seed", type=int, default=7)
    calibrate.add_argument("--trials", type=int, default=10)
    calibrate.set_defaults(func=_cmd_calibrate)

    traces = sub.add_parser("traces",
                            help="Section 5.4 trace availability")
    traces.add_argument("--viewers", type=int, default=10)
    traces.add_argument("--videos", type=int, default=10)
    traces.add_argument("--workers", type=int, default=1)
    traces.set_defaults(func=_cmd_traces)

    sub.add_parser("safety", help="eye-safety reports"
                   ).set_defaults(func=_cmd_safety)

    plan = sub.add_parser("plan", help="ceiling TX coverage plan")
    plan.add_argument("--width", type=float, default=3.0)
    plan.add_argument("--depth", type=float, default=3.0)
    plan.add_argument("--ceiling", type=float, default=2.6)
    plan.add_argument("--coverage", type=float, default=0.95)
    plan.set_defaults(func=_cmd_plan)

    sub.add_parser("formats", help="VR format bandwidth ladder"
                   ).set_defaults(func=_cmd_formats)

    bench = sub.add_parser(
        "bench", help="time the trace pipeline, write a JSON record")
    bench.add_argument("--viewers", type=int, default=10)
    bench.add_argument("--videos", type=int, default=10)
    bench.add_argument("--duration", type=float, default=60.0)
    bench.add_argument("--workers", type=int, default=0,
                       help="pooled-row worker count (0 = auto: "
                            "max(2, default_workers()))")
    bench.add_argument("--quick", action="store_true",
                       help="pinned CI preset: canonical 500-trace "
                            "corpus, best-of-3 rows, 2-trace "
                            "reference subset")
    bench.add_argument("--repeats", type=int, default=2,
                       help="best-of repeats per row")
    bench.add_argument("--require-batch-speedup", type=float,
                       default=None, metavar="X",
                       help="exit nonzero unless batch+shm beats "
                            "loop+pickle by X at matched workers")
    bench.add_argument("--ref-traces", type=int, default=5,
                       help="traces timed through the reference loop")
    bench.add_argument("--output", default="BENCH_trace_pipeline.json")
    bench.set_defaults(func=_cmd_bench)

    chaos = sub.add_parser(
        "chaos", help="fault-injection sweep, write BENCH_chaos.json")
    chaos.add_argument("--scenarios", default=None,
                       help="comma-separated scenario names (default all)")
    chaos.add_argument("--workers", type=int, default=1)
    chaos.add_argument("--output", default="BENCH_chaos.json")
    chaos.set_defaults(func=_cmd_chaos)

    sweep = sub.add_parser(
        "sweep",
        help="crash-safe checkpointed sweep (resume with --resume)")
    sweep.add_argument("--kind", default="demo",
                       help="workload: demo, calibration, or chaos")
    sweep.add_argument("--checkpoint", required=True,
                       help="checkpoint directory (manifest, journal, "
                            "spooled results)")
    sweep.add_argument("--resume", action="store_true",
                       help="continue an interrupted sweep; completed "
                            "units are skipped, bytes are identical")
    sweep.add_argument("--workers", type=int, default=1,
                       help="concurrent worker processes (0 = auto)")
    sweep.add_argument("--timeout-s", type=float, default=None,
                       dest="timeout_s", metavar="S",
                       help="kill a unit's worker after S seconds")
    sweep.add_argument("--retries", type=int, default=2,
                       help="retries per unit before serial escalation")
    sweep.add_argument("--units", type=int, default=8,
                       help="unit count (demo/calibration kinds)")
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument("--work", type=int, default=4096,
                       help="per-unit draw count (demo kind)")
    sweep.add_argument("--sleep-s", type=float, default=0.0,
                       dest="sleep_s", metavar="S",
                       help="per-unit sleep (demo kind; test harness)")
    sweep.add_argument("--trials", type=int, default=10,
                       help="realignment trials (calibration kind)")
    sweep.add_argument("--scenarios", default=None,
                       help="comma-separated names (chaos kind)")
    sweep.add_argument("--group", default="corpus",
                       help="final corpus group name")
    sweep.add_argument("--output", default=None,
                       help="payload JSON path "
                            "(default SWEEP_<kind>.json)")
    sweep.set_defaults(func=_cmd_sweep)

    lint = sub.add_parser(
        "lint", help="determinism/units static analysis (repro.devtools)")
    from .devtools.cli import add_lint_arguments
    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help="whole-program layering/unit-flow/RNG-taint analysis")
    from .devtools.program.cli import add_analyze_arguments
    add_analyze_arguments(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    sub.add_parser("scenarios", help="list the experiment registry"
                   ).set_defaults(func=_cmd_scenarios)
    scenario = sub.add_parser("scenario",
                              help="quick-run one experiment")
    scenario.add_argument("scenario_id")
    scenario.set_defaults(func=_cmd_scenario)
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code.

    Every subcommand shares one exception→exit-code contract: 0 ok,
    1 failed work (units, store, coverage), 2 bad configuration or
    usage, 130/143 interrupted by SIGINT/SIGTERM (128+signum).
    Subcommands may map their own exceptions first for a more
    specific message; this ladder is the backstop that keeps an
    escaping taxonomy exception from surfacing as a traceback.
    """
    from .galvo import CoverageError
    from .orchestrator import (
        ManifestError,
        SweepConfigError,
        SweepError,
        SweepInterrupted,
        UnitFailedError,
    )
    from .store import StoreError
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SweepInterrupted as exc:
        print(f"interrupted by signal {exc.signum}")
        return exc.exit_code
    except KeyboardInterrupt:
        print("interrupted")
        return 130
    except (SweepConfigError, ManifestError) as exc:
        print(str(exc))
        return 2
    except (UnitFailedError, SweepError, StoreError,
            CoverageError) as exc:
        print(str(exc))
        return 1


if __name__ == "__main__":
    sys.exit(main())
