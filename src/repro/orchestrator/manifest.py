"""The work-unit manifest: what a sweep *is*, content-addressed.

A sweep is enumerated up front as an ordered list of **work units**,
each a JSON-able parameter dictionary.  Identity is content-hashed in
two tiers, mirroring the ``devtools/program`` cache (per-file shas
feeding one whole-run key):

* **tier 1 — the unit key**: SHA-256 over the canonical JSON of
  ``(manifest version, sweep name, common params, unit params)``.
  This is the name completed work is filed under (journal records,
  spooled column groups), so a unit's results survive any reordering
  or extension of the sweep that keeps its parameters intact.
* **tier 2 — the sweep key**: SHA-256 over the ordered unit keys plus
  the shared configuration.  Resume compares this single value to
  decide whether a checkpoint directory belongs to the sweep being
  asked for; any drift in any unit's parameters changes it.

Keys derive only from parameters — never from wall clock, host, or
worker count — so re-deriving the manifest on ``--resume`` reproduces
it exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from ..store import read_json, write_json_atomic

#: Bump on changes to key derivation or the manifest file schema;
#: part of every hash, so old checkpoints are cleanly rejected.
MANIFEST_VERSION = 1

#: Hex digits of the unit key used for group / display names.
_SHORT_KEY = 16


class ManifestError(ValueError):
    """A sweep definition or manifest file is unusable."""


def canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    try:
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ManifestError(
            f"sweep parameters must be JSON-able, finite values: "
            f"{exc}") from exc


def content_key(payload: object) -> str:
    """SHA-256 hex digest of the canonical JSON of ``payload``."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class WorkUnit:
    """One unit of a sweep: its position, identity, and parameters."""

    index: int
    key: str
    params: Mapping[str, object]

    @property
    def group(self) -> str:
        """The column-group name this unit's results spool under."""
        return f"u{self.key[:_SHORT_KEY]}"

    @property
    def label(self) -> str:
        """Short display form: ``#<index> u<key prefix>``."""
        return f"#{self.index} {self.group}"


@dataclass(frozen=True)
class SweepManifest:
    """The full enumerated sweep plus its two-tier content keys."""

    name: str
    common: Mapping[str, object]
    units: Tuple[WorkUnit, ...]
    sweep_key: str

    def unit_by_key(self) -> Dict[str, WorkUnit]:
        return {unit.key: unit for unit in self.units}


def build_manifest(name: str,
                   common: Mapping[str, object],
                   unit_params: Sequence[Mapping[str, object]]
                   ) -> SweepManifest:
    """Enumerate and content-address a sweep.

    Raises :class:`ManifestError` for an empty sweep, un-JSON-able
    parameters, or two units with identical parameters (their results
    would collide under one key).
    """
    if not unit_params:
        raise ManifestError(f"sweep {name!r} has no work units")
    common = dict(common)
    units: List[WorkUnit] = []
    seen: Dict[str, int] = {}
    for index, params in enumerate(unit_params):
        key = content_key({
            "version": MANIFEST_VERSION,
            "sweep": name,
            "common": common,
            "params": dict(params),
        })
        if key in seen:
            raise ManifestError(
                f"sweep {name!r}: units #{seen[key]} and #{index} "
                f"have identical parameters ({dict(params)!r}); every "
                "unit must be unique")
        seen[key] = index
        units.append(WorkUnit(index=index, key=key,
                              params=dict(params)))
    sweep_key = content_key({
        "version": MANIFEST_VERSION,
        "sweep": name,
        "common": common,
        "units": [unit.key for unit in units],
    })
    return SweepManifest(name=name, common=common,
                         units=tuple(units), sweep_key=sweep_key)


def write_manifest(path: Union[str, Path],
                   manifest: SweepManifest) -> None:
    """Publish the manifest file atomically (informational + guard)."""
    write_json_atomic(path, {
        "version": MANIFEST_VERSION,
        "sweep": manifest.name,
        "sweep_key": manifest.sweep_key,
        "common": dict(manifest.common),
        "units": [
            {"index": unit.index, "key": unit.key,
             "params": dict(unit.params)}
            for unit in manifest.units
        ],
    }, sort_keys=True)


def read_manifest_key(path: Union[str, Path]) -> str:
    """The recorded sweep key of a manifest file.

    Raises :class:`ManifestError` when the file is unreadable or not a
    manifest — the caller decides whether that is fatal (a mismatched
    sweep) or recoverable (a torn file that will be rewritten, since
    the manifest is always re-derivable from the sweep definition).
    """
    try:
        payload = read_json(path)
    except (OSError, ValueError) as exc:
        raise ManifestError(
            f"unreadable manifest at {path}: {exc}") from exc
    if not isinstance(payload, dict) or \
            payload.get("version") != MANIFEST_VERSION or \
            not isinstance(payload.get("sweep_key"), str):
        raise ManifestError(
            f"{path} is not a version-{MANIFEST_VERSION} sweep "
            "manifest")
    return payload["sweep_key"]
