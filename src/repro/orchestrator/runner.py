"""The supervised sweep runner: execute, spool, resume.

``SweepRunner`` drives a content-addressed :class:`~repro.orchestrator.
manifest.SweepManifest` to completion against a checkpoint directory::

    <checkpoint>/
      MANIFEST.json     # the enumerated sweep + its sweep key
      journal.ndjson    # checksummed unit -> group completion records
      store/            # ColumnStore: one tiny group per finished unit
        u<key16>/       #   rows of one unit (atomic publish)
        corpus/         #   the assembled final corpus (finalize())

The three invariants that make a run killable at any byte:

1. **Atomic spooling.**  A unit's rows land via ``ColumnStore.
   write_group`` (tmp dir + rename), then the journal line is
   appended (checksummed, fsynced).  Any prefix of that sequence is
   either invisible or verifiable.
2. **Idempotent replay.**  ``prepare(resume=True)`` re-derives the
   manifest, replays the journal (dropping torn tails), re-verifies
   every journaled group against its recorded payload SHA, and
   re-runs exactly the units that don't check out.  Since unit
   functions are pure and keyed by content-hashed parameters, the
   final corpus is byte-identical to an uninterrupted run.
3. **Supervised execution.**  Each attempt runs in its own killable
   child process (:class:`repro.parallel.PendingCall`).  A worker
   that dies or overruns its per-unit timeout is retried a bounded
   number of times, then the unit is *escalated to serial* in-parent
   execution — the same ladder ``simulate/supervisor.py`` applies to
   the link, applied to the compute layer.  A unit function that
   raises is retried with fresh ``determinism.derive``-spawned retry
   seeds (when the spec opts in) before escalating.

Environments that forbid child processes degrade to in-parent serial
execution with one :class:`~repro.parallel.ParallelFallbackWarning`,
exactly like the pool maps; results are identical.
"""

from __future__ import annotations

import hashlib
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from ..determinism import derive
from ..parallel import (
    ParallelFallbackWarning,
    PendingCall,
    default_workers,
    wait_ready,
)
from ..store import ColumnGroup, ColumnStore, StoreError
from .journal import STATUS_DONE, Journal, JournalRecord
from .manifest import (
    ManifestError,
    SweepManifest,
    WorkUnit,
    build_manifest,
    canonical_json,
    content_key,
    read_manifest_key,
    write_manifest,
)

#: Scheduler wake-up period: bounds stop-flag and timeout latency.
_POLL_S = 0.2


class SweepError(RuntimeError):
    """A sweep cannot proceed (incomplete, inconsistent results...)."""


class SweepConfigError(SweepError):
    """The checkpoint directory does not match the requested sweep."""


class UnitFailedError(SweepError):
    """Units exhausted every retry and the serial escalation."""

    def __init__(self, failures: List[Tuple[WorkUnit, str]]) -> None:
        lines = "; ".join(f"{unit.label}: {message}"
                          for unit, message in failures)
        super().__init__(
            f"{len(failures)} unit(s) failed after retries and serial "
            f"escalation ({lines}); completed units are checkpointed "
            "— fix and re-run with resume")
        self.failures = failures


@dataclass(frozen=True)
class SweepSpec:
    """What to run: a pure unit function over enumerated parameters.

    ``unit_fn(params)`` must return a non-empty mapping of column name
    to scalar or fixed-shape array — one *row* of the final corpus —
    and must be deterministic in ``params`` (that is what makes
    resume byte-identical).  For pooled execution it should be a
    module-level callable (or ``functools.partial`` of one).

    ``retry_seed_param`` opts into seeded retries: when a unit
    *raises* (not when its worker dies — those re-run unchanged), the
    retry attempt receives ``params[retry_seed_param]`` freshly
    derived from the unit key and attempt number via
    :func:`repro.determinism.derive`.  Workloads that are pure leave
    it None and simply re-run identically.
    """

    name: str
    unit_fn: Callable[[Dict[str, object]], Mapping[str, object]]
    unit_params: Tuple[Dict[str, object], ...]
    common: Mapping[str, object] = field(default_factory=dict)
    retry_seed_param: Optional[str] = None


@dataclass(frozen=True)
class SweepStatus:
    """What :meth:`SweepRunner.prepare` found in the checkpoint."""

    total: int
    done: int
    reaped_tmp: int
    journal_dropped_bytes: int

    @property
    def pending(self) -> int:
        return self.total - self.done


@dataclass
class SweepResult:
    """Execution accounting for one :meth:`SweepRunner.run` call."""

    total: int
    skipped: int = 0
    ran: int = 0
    infra_retries: int = 0
    fn_retries: int = 0
    escalations: int = 0
    failed: List[Tuple[WorkUnit, str]] = field(default_factory=list)

    @property
    def done(self) -> int:
        return self.skipped + self.ran


@dataclass
class _Attempts:
    """Per-unit failure bookkeeping across requeues."""

    infra: int = 0
    fn: int = 0


@dataclass
class _Running:
    """One in-flight attempt: the child call plus its deadline."""

    unit: WorkUnit
    call: PendingCall
    started_s: float


def _rows_from_payload(unit: WorkUnit,
                       payload: object) -> Dict[str, np.ndarray]:
    """A unit result as one-row column arrays (leading axis 1)."""
    if not isinstance(payload, Mapping) or not payload:
        raise SweepError(
            f"unit {unit.label}: unit_fn must return a non-empty "
            f"mapping of column -> scalar/array, got {type(payload)}")
    rows: Dict[str, np.ndarray] = {}
    for name, value in payload.items():
        rows[str(name)] = np.asarray(value)[None, ...]
    return rows


def _sha_of_columns(columns: Mapping[str, np.ndarray]) -> str:
    """Order-independent content hash of named arrays (name-sorted)."""
    digest = hashlib.sha256()
    for name in sorted(columns):
        array = np.ascontiguousarray(columns[name])
        digest.update(name.encode("utf-8"))
        digest.update(array.dtype.str.encode("ascii"))
        digest.update(canonical_json(list(array.shape)).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


class SweepRunner:
    """Supervised, checkpointed execution of one sweep (module doc)."""

    def __init__(self, spec: SweepSpec,
                 checkpoint_dir: Union[str, Path],
                 workers: Optional[int] = 1,
                 timeout_s: Optional[float] = None,
                 retries: int = 2,
                 progress: Optional[
                     Callable[[int, int, WorkUnit], None]] = None,
                 stop_check: Optional[Callable[[], None]] = None,
                 stop_after_units: Optional[int] = None,
                 chaos: Optional[object] = None) -> None:
        if workers is None or workers == 0:
            workers = default_workers()
        if workers < 1:
            raise ValueError("workers must be >= 1 (or 0/None for auto)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.spec = spec
        self.checkpoint = Path(checkpoint_dir)
        self.workers = int(workers)
        self.timeout_s = timeout_s
        self.retries = int(retries)
        self.manifest: SweepManifest = build_manifest(
            spec.name, spec.common, spec.unit_params)
        self._progress = progress
        self._stop_check = stop_check
        self._stop_after_units = stop_after_units
        self._chaos = chaos
        self._journal = Journal(self.checkpoint / "journal.ndjson")
        self._store: Optional[ColumnStore] = None
        self._completed: Dict[str, JournalRecord] = {}
        self._pending: List[WorkUnit] = []
        self._attempts: Dict[str, _Attempts] = {}
        self._use_processes = True
        self._prepared = False

    # -- checkpoint lifecycle --------------------------------------------

    @property
    def store(self) -> ColumnStore:
        """The checkpoint's column store (valid after prepare)."""
        if self._store is None:
            raise SweepError("call prepare() before using the store")
        return self._store

    @property
    def manifest_path(self) -> Path:
        return self.checkpoint / "MANIFEST.json"

    def prepare(self, resume: bool = False) -> SweepStatus:
        """Open (or create) the checkpoint and replay the journal.

        A fresh run against a directory that already holds sweep state
        requires ``resume=True`` — refusing by default keeps a typo'd
        checkpoint path from silently re-spending a finished sweep.
        ``resume=True`` against an empty directory simply starts
        fresh, so retry loops can always pass it.
        """
        self.checkpoint.mkdir(parents=True, exist_ok=True)
        existing = self.manifest_path.exists() \
            or self._journal.path.exists()
        if existing and not resume:
            raise SweepConfigError(
                f"checkpoint {self.checkpoint} already holds sweep "
                "state; pass resume=True to continue it (or point at "
                "a fresh directory)")
        if self.manifest_path.exists():
            try:
                recorded = read_manifest_key(self.manifest_path)
            except ManifestError:
                recorded = None  # torn manifest: rewritten below
            if recorded is not None \
                    and recorded != self.manifest.sweep_key:
                raise SweepConfigError(
                    f"checkpoint {self.checkpoint} belongs to a "
                    f"different sweep (recorded key {recorded[:16]}…, "
                    f"requested {self.manifest.sweep_key[:16]}…); "
                    "refusing to mix results")
        write_manifest(self.manifest_path, self.manifest)
        self._store = ColumnStore(self.checkpoint / "store")
        # Single writer by contract, so tmp dirs here are always the
        # droppings of a crashed predecessor: reap them.
        reaped = self._store.vacuum()
        records, dropped = self._journal.replay(repair=True)
        self._completed = {}
        by_key = self.manifest.unit_by_key()
        for key, record in records.items():
            unit = by_key.get(key)
            if unit is None or record.status != STATUS_DONE:
                continue
            if self._unit_verifies(unit, record):
                self._completed[key] = record
        self._pending = [unit for unit in self.manifest.units
                         if unit.key not in self._completed]
        self._attempts = {}
        self._prepared = True
        return SweepStatus(total=len(self.manifest.units),
                           done=len(self._completed),
                           reaped_tmp=len(reaped),
                           journal_dropped_bytes=dropped)

    def _unit_verifies(self, unit: WorkUnit,
                       record: JournalRecord) -> bool:
        """Does the spooled group match its journal record exactly?"""
        if record.group != unit.group:
            return False
        assert self._store is not None
        try:
            group = self._store.read_group(unit.group)
            columns = {name: np.asarray(group[name]) for name in group}
        except (KeyError, StoreError):
            return False
        return _sha_of_columns(columns) == record.payload_sha

    # -- execution -------------------------------------------------------

    def run(self) -> SweepResult:
        """Execute every pending unit; raises on unrecoverable units.

        Completed units spool incrementally, so an exception (or a
        kill) part-way through loses only in-flight work.  Raises
        :class:`UnitFailedError` when any unit exhausted the retry
        ladder; those units stay un-journaled and re-run on resume.
        """
        if not self._prepared:
            raise SweepError("call prepare() before run()")
        result = SweepResult(total=len(self.manifest.units),
                             skipped=len(self._completed))
        if self._pending:
            pending: Deque[WorkUnit] = deque(self._pending)
            if self._use_processes:
                self._run_supervised(pending, result)
            else:
                self._run_inline(pending, result)
            self._pending = [unit for unit in self.manifest.units
                             if unit.key not in self._completed]
        if result.failed:
            raise UnitFailedError(result.failed)
        return result

    def _run_supervised(self, pending: Deque[WorkUnit],
                        result: SweepResult) -> None:
        """The pooled scheduler: killable children, bounded retries."""
        running: Dict[str, _Running] = {}
        try:
            while pending or running:
                self._check_stop()
                while pending and len(running) < self.workers:
                    unit = pending.popleft()
                    if not self._launch(unit, running):
                        # Process spawn unavailable: finish the whole
                        # run in-parent (results are identical).
                        self._drain_running(running)
                        pending.appendleft(unit)
                        self._run_inline(pending, result)
                        return
                ready = set(wait_ready(
                    [state.call for state in running.values()],
                    timeout_s=_POLL_S))
                now_s = time.monotonic()
                for state in list(running.values()):
                    if state.call in ready:
                        del running[state.unit.key]
                        status, value = state.call.finish()
                        self._handle_outcome(state.unit, status, value,
                                             pending, result)
                    elif self.timeout_s is not None and \
                            now_s - state.started_s >= self.timeout_s:
                        state.call.kill()
                        del running[state.unit.key]
                        self._handle_outcome(
                            state.unit, "died",
                            f"timed out after {self.timeout_s:g} s "
                            "(killed)", pending, result)
        finally:
            self._drain_running(running)

    def _drain_running(self, running: Dict[str, _Running]) -> None:
        for state in running.values():
            state.call.kill()
        running.clear()

    def _launch(self, unit: WorkUnit,
                running: Dict[str, _Running]) -> bool:
        """Start one attempt; False when processes are unavailable."""
        params = self._params_for(unit)
        try:
            call = PendingCall(self.spec.unit_fn, params)
        except OSError as exc:
            warnings.warn(
                f"sweep {self.spec.name!r}: child processes "
                f"unavailable ({type(exc).__name__}: {exc}); running "
                "remaining units serially in-parent (results are "
                "identical, only unsupervised)",
                ParallelFallbackWarning, stacklevel=4)
            self._use_processes = False
            return False
        running[unit.key] = _Running(unit=unit, call=call,
                                     started_s=time.monotonic())
        if self._chaos is not None:
            on_launch = getattr(self._chaos, "on_launch", None)
            if on_launch is not None:
                attempts = self._attempts.setdefault(unit.key,
                                                     _Attempts())
                on_launch(unit.index,
                          attempts.infra + attempts.fn,
                          call.process)
        return True

    def _handle_outcome(self, unit: WorkUnit, status: str,
                        value: object, pending: Deque[WorkUnit],
                        result: SweepResult) -> None:
        if status == "ok":
            self._spool(unit, value)
            result.ran += 1
            return
        attempts = self._attempts.setdefault(unit.key, _Attempts())
        if status == "error":
            attempts.fn += 1
            if attempts.fn <= self.retries:
                result.fn_retries += 1
                pending.appendleft(unit)
                return
        else:  # "died": killed, crashed, or timed out
            attempts.infra += 1
            if attempts.infra <= self.retries:
                result.infra_retries += 1
                pending.appendleft(unit)
                return
        self._escalate(unit, str(value), result)

    def _escalate(self, unit: WorkUnit, last_error: str,
                  result: SweepResult) -> None:
        """The poisoned-unit ladder rung: one serial in-parent try."""
        result.escalations += 1
        try:
            payload = self.spec.unit_fn(self._params_for(unit))
        except Exception as exc:
            result.failed.append(
                (unit, f"{type(exc).__name__}: {exc} (after "
                       f"{last_error!r} in workers)"))
            return
        self._spool(unit, payload)
        result.ran += 1

    def _run_inline(self, pending: Deque[WorkUnit],
                    result: SweepResult) -> None:
        """Serial in-parent execution (fallback; no kill, no timeout)."""
        while pending:
            self._check_stop()
            unit = pending.popleft()
            attempts = self._attempts.setdefault(unit.key, _Attempts())
            try:
                payload = self.spec.unit_fn(self._params_for(unit))
            except Exception as exc:
                attempts.fn += 1
                if attempts.fn <= self.retries:
                    result.fn_retries += 1
                    pending.appendleft(unit)
                else:
                    result.failed.append(
                        (unit, f"{type(exc).__name__}: {exc}"))
                continue
            self._spool(unit, payload)
            result.ran += 1

    def _params_for(self, unit: WorkUnit) -> Dict[str, object]:
        """This attempt's parameters (retry seeds derived, if opted)."""
        params = dict(unit.params)
        attempts = self._attempts.get(unit.key)
        fn_failures = attempts.fn if attempts is not None else 0
        if fn_failures > 0 and self.spec.retry_seed_param is not None:
            rng = derive(int(unit.key[:16], 16), fn_failures)
            params[self.spec.retry_seed_param] = \
                int(rng.integers(2 ** 63))
        return params

    def _check_stop(self) -> None:
        if self._stop_check is not None:
            self._stop_check()

    def _spool(self, unit: WorkUnit, payload: object) -> None:
        """Publish one unit's rows atomically, then journal it."""
        assert self._store is not None
        rows = _rows_from_payload(unit, payload)
        sha = _sha_of_columns(rows)
        self._store.write_group(unit.group, rows, attrs={
            "unit_key": unit.key,
            "index": unit.index,
            "params": dict(unit.params),
        })
        self._chaos_hook("on_publish", unit.index)
        record = JournalRecord(unit_key=unit.key, group=unit.group,
                               payload_sha=sha)
        self._journal.append(record)
        self._completed[unit.key] = record
        self._chaos_hook("on_unit_complete", len(self._completed))
        if self._progress is not None:
            self._progress(len(self._completed),
                           len(self.manifest.units), unit)
        if self._stop_after_units is not None and \
                len(self._completed) >= self._stop_after_units:
            import signal as _signal
            from .signals import SweepInterrupted
            raise SweepInterrupted(int(_signal.SIGTERM))

    def _chaos_hook(self, name: str, argument: int) -> None:
        if self._chaos is None:
            return
        hook = getattr(self._chaos, name, None)
        if hook is not None:
            hook(argument)

    # -- assembly --------------------------------------------------------

    def finalize(self, group: str = "corpus",
                 dest_store: Optional[ColumnStore] = None,
                 extra_attrs: Optional[Mapping[str, object]] = None
                 ) -> Tuple[ColumnGroup, Dict[str, object]]:
        """Assemble the final corpus; returns ``(group, payload)``.

        Rows stack in **manifest order** regardless of the order units
        completed in (or across how many interrupted runs), which is
        what makes the corpus byte-identical to an uninterrupted
        sweep.  Idempotent: a crash mid-finalize leaves the previous
        corpus (atomic publish); re-running rewrites the same bytes.
        The returned payload dict contains only run-independent
        values, so the published JSON is byte-identical too.
        """
        if not self._prepared:
            raise SweepError("call prepare() before finalize()")
        assert self._store is not None
        missing = [unit for unit in self.manifest.units
                   if unit.key not in self._completed]
        if missing:
            raise SweepError(
                f"{len(missing)} unit(s) incomplete (first: "
                f"{missing[0].label}); run() the sweep to the end "
                "before finalize()")
        per_unit: List[Dict[str, np.ndarray]] = []
        for unit in self.manifest.units:
            unit_group = self._store.read_group(unit.group)
            per_unit.append({name: np.asarray(unit_group[name])
                             for name in unit_group})
        names = sorted(per_unit[0])
        for unit, columns in zip(self.manifest.units, per_unit):
            if sorted(columns) != names:
                raise SweepError(
                    f"unit {unit.label} produced columns "
                    f"{sorted(columns)}, expected {names}; unit_fn "
                    "must return the same columns for every unit")
        try:
            stacked = {name: np.concatenate(
                [columns[name] for columns in per_unit], axis=0)
                for name in names}
        except ValueError as exc:
            raise SweepError(
                f"unit rows do not stack ({exc}); unit_fn must return "
                "the same shapes and dtypes for every unit") from exc
        attrs: Dict[str, object] = {
            "kind": "sweep",
            "sweep": self.spec.name,
            "sweep_key": self.manifest.sweep_key,
            "units": len(self.manifest.units),
            "common": dict(self.spec.common),
        }
        if extra_attrs:
            attrs.update(extra_attrs)
        dest = dest_store if dest_store is not None else self._store
        final = dest.write_group(group, stacked, attrs=attrs)
        corpus_sha = hashlib.sha256(
            (_sha_of_columns(stacked) + content_key(attrs))
            .encode("ascii")).hexdigest()
        payload: Dict[str, object] = {
            "pipeline": "sweep",
            "sweep": self.spec.name,
            "sweep_key": self.manifest.sweep_key,
            "group": group,
            "units": len(self.manifest.units),
            "common": dict(self.spec.common),
            "columns": {
                name: {"dtype": stacked[name].dtype.str,
                       "shape": list(stacked[name].shape)}
                for name in names
            },
            "summary": _summaries(stacked),
            "corpus_sha256": corpus_sha,
        }
        return final, payload


def _summaries(columns: Mapping[str, np.ndarray]
               ) -> Dict[str, Dict[str, float]]:
    """min/mean/max of the scalar numeric columns (JSON-safe)."""
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted(columns):
        array = np.asarray(columns[name])
        if array.ndim != 1 or array.dtype.kind not in "fiub" \
                or array.size == 0:
            continue
        values = array.astype(float)
        if not np.all(np.isfinite(values)):
            continue
        out[name] = {"min": float(values.min()),
                     "mean": float(values.mean()),
                     "max": float(values.max())}
    return out
