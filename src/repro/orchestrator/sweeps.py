"""The sweep catalogue: named workloads the orchestrator can drive.

Each *kind* maps CLI-level options to a :class:`~repro.orchestrator.
runner.SweepSpec` — a pure, module-level unit function plus the
enumerated unit parameters.  Unit functions receive one JSON-able
parameter dict (everything they need rides in it, so the content key
over those parameters fully determines the result) and return one
row: a mapping of column name to scalar.

Kinds:

* ``demo`` — synthetic reduction over :func:`repro.determinism.derive`
  streams; cheap, exercises every orchestrator path, and takes an
  optional per-unit ``sleep_s`` so kill/resume harnesses can stretch
  the window they shoot at.
* ``calibration`` — Section 5.2's two-probe TP calibration quality,
  one seed (one simulated world) per unit.
* ``chaos`` — the fault-injection scenario suite, one named scenario
  per unit, flattened to numeric supervised/unsupervised columns.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..determinism import derive
from ..faults.chaos import get_scenarios, run_scenario
from ..simulate.montecarlo import calibration_quality
from .runner import SweepSpec


def _demo_unit(params: Dict[str, Any]) -> Mapping[str, object]:
    """One synthetic unit: moments of a derived-stream normal sample."""
    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s > 0:
        time.sleep(sleep_s)
    rng = derive(int(params["seed"]), int(params["index"]))
    draws = rng.standard_normal(int(params["work"]))
    return {
        "index": int(params["index"]),
        "mean": float(draws.mean()),
        "rms": float(math.sqrt(float((draws ** 2).mean()))),
    }


def _calibration_unit(params: Dict[str, Any]) -> Mapping[str, object]:
    """One world's calibration-quality row (montecarlo's metric)."""
    quality = calibration_quality(int(params["seed"]),
                                  trials=int(params["trials"]))
    row: Dict[str, object] = {"seed": int(params["seed"])}
    row.update(quality)
    return row


def _chaos_unit(params: Dict[str, Any]) -> Mapping[str, object]:
    """Both arms of one chaos scenario, flattened to numeric columns."""
    scenario = get_scenarios([str(params["scenario"])])[0]
    record = run_scenario(scenario)
    row: Dict[str, object] = {
        "scenario": record["name"],
        "duration_s": float(record["duration_s"]),
        "uptime_gain": float(record["uptime_gain"]),
    }
    for arm in ("supervised", "unsupervised"):
        for key, value in record[arm].items():
            row[f"{arm}_{key}"] = float(value)
    return row


def build_sweep(kind: str,
                seed: int,
                units: int = 8,
                work: int = 4096,
                sleep_s: float = 0.0,
                trials: int = 10,
                scenarios: Optional[Sequence[str]] = None) -> SweepSpec:
    """A ready-to-run :class:`SweepSpec` for one catalogue kind.

    ``seed`` roots the per-unit streams (``demo``) or enumerates the
    worlds (``calibration``); ``scenarios`` selects chaos scenarios by
    name (all of them when omitted).  Unknown kinds raise
    ``KeyError`` listing the catalogue.
    """
    if units < 1:
        raise ValueError("units must be >= 1")
    if kind == "demo":
        unit_params: List[Dict[str, object]] = [
            {"seed": int(seed), "index": index, "work": int(work),
             "sleep_s": float(sleep_s)}
            for index in range(units)
        ]
        return SweepSpec(name="demo", unit_fn=_demo_unit,
                         unit_params=tuple(unit_params),
                         common={"work": int(work)})
    if kind == "calibration":
        unit_params = [
            {"seed": int(seed) + index, "trials": int(trials)}
            for index in range(units)
        ]
        return SweepSpec(name="calibration", unit_fn=_calibration_unit,
                         unit_params=tuple(unit_params),
                         common={"trials": int(trials)})
    if kind == "chaos":
        names = [scenario.name for scenario in get_scenarios(scenarios)]
        unit_params = [{"scenario": name} for name in names]
        return SweepSpec(name="chaos", unit_fn=_chaos_unit,
                         unit_params=tuple(unit_params),
                         common={})
    raise KeyError(
        f"unknown sweep kind {kind!r}; available: "
        f"{', '.join(list_kinds())}")


def list_kinds() -> List[str]:
    """The catalogue, in documentation order."""
    return ["demo", "calibration", "chaos"]
