"""The completion journal: crash-safe unit→group bookkeeping.

One append-only NDJSON file records, per completed unit, which column
group its rows were published under and a SHA-256 of the row payload.
The crash model is *kill-at-any-byte*:

* A record is appended only **after** its group's atomic publish, so a
  journaled unit always has its data on disk.
* Each line carries a checksum over its own body; a torn tail (the
  classic SIGKILL-mid-append artifact) fails the parse or the
  checksum and is dropped — the unit simply re-runs and overwrites
  its group, which is idempotent.  A torn write is therefore
  *indistinguishable from "not done"*, which is the whole contract.
* Replay stops at the first bad line: in a single-writer append-only
  file, anything after a corrupt byte is untrusted.  ``repair=True``
  truncates the file back to the last good record so the next append
  starts from a clean prefix.

Appends are flushed and fsynced per record; at work-unit granularity
(units are whole simulations, not rows) the cost is noise.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple, Union

import json

from .manifest import canonical_json, content_key

#: Hex digits of the per-line checksum.
_CRC_LEN = 12

#: The only status worth journaling: the unit's rows are published.
STATUS_DONE = "done"


@dataclass(frozen=True)
class JournalRecord:
    """One completed unit: identity, where it landed, payload hash."""

    unit_key: str
    group: str
    payload_sha: str
    status: str = STATUS_DONE

    def to_dict(self) -> Dict[str, str]:
        return {"unit": self.unit_key, "group": self.group,
                "sha": self.payload_sha, "status": self.status}


def _line_for(record: JournalRecord) -> str:
    body = canonical_json(record.to_dict())
    crc = content_key(body)[:_CRC_LEN]
    return canonical_json({"crc": crc, "record": record.to_dict()})


def _parse_line(line: bytes) -> JournalRecord:
    """One journal line back to a record; raises ValueError if bad."""
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("journal line is not an object")
    body = payload.get("record")
    crc = payload.get("crc")
    if not isinstance(body, dict) or not isinstance(crc, str):
        raise ValueError("journal line missing record/crc")
    if content_key(canonical_json(body))[:_CRC_LEN] != crc:
        raise ValueError("journal line checksum mismatch")
    record = JournalRecord(
        unit_key=body["unit"], group=body["group"],
        payload_sha=body["sha"], status=body["status"])
    if not all(isinstance(field, str) for field in record.to_dict()
               .values()):
        raise ValueError("journal record fields must be strings")
    return record


class Journal:
    """Append-only checksummed completion log (see module docstring)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, record: JournalRecord) -> None:
        """Durably append one record (flush + fsync before returning)."""
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(_line_for(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def replay(self, repair: bool = False
               ) -> Tuple[Dict[str, JournalRecord], int]:
        """Parse the journal: ``(records by unit key, bytes dropped)``.

        Later records for the same unit win (a unit legitimately
        re-runs after its record was torn away).  With ``repair=True``
        the file is truncated back to the last good record so future
        appends extend a verified prefix.
        """
        if not self.path.exists():
            return {}, 0
        data = self.path.read_bytes()
        records: Dict[str, JournalRecord] = {}
        good_end = 0
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                break  # torn tail: no terminator
            line = data[offset:newline]
            try:
                record = _parse_line(line)
            except (ValueError, KeyError, UnicodeDecodeError):
                break  # corrupt: drop this line and everything after
            records[record.unit_key] = record
            offset = newline + 1
            good_end = offset
        dropped = len(data) - good_end
        if repair and dropped:
            with open(self.path, "rb+") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
        return records, dropped
