"""Graceful SIGINT/SIGTERM handling for long-running CLI commands.

A sweep (or bench, or chaos run) killed by Ctrl-C must not die in the
middle of publishing a result.  :class:`SignalGuard` converts the
asynchronous signal into a synchronous flag: the handler only records
the signal, and the command raises :class:`SweepInterrupted` at its
next *checkpoint boundary* (between work units, between bench rows,
never inside a write).  Combined with atomic publication everywhere,
an interrupted command leaves only complete artifacts behind and
exits with the conventional ``128 + signum`` code (130 for SIGINT,
143 for SIGTERM).

A second signal escalates: the guard restores the previous handlers
and raises ``KeyboardInterrupt`` immediately, so a wedged compute
phase can still be interrupted the blunt way.
"""

from __future__ import annotations

import signal
from types import FrameType
from typing import List, Optional, Tuple


class SweepInterrupted(RuntimeError):
    """A guarded command was asked to stop at a checkpoint boundary."""

    def __init__(self, signum: int) -> None:
        super().__init__(
            f"interrupted by signal {signum}; checkpoint flushed")
        self.signum = signum

    @property
    def exit_code(self) -> int:
        return 128 + self.signum


class SignalGuard:
    """Defer SIGINT/SIGTERM to explicit :meth:`check` points.

    Usage::

        with SignalGuard() as guard:
            for unit in work:
                guard.check()         # raises SweepInterrupted
                run_and_publish(unit) # never torn by the signal
    """

    def __init__(self,
                 signums: Tuple[int, ...] = (signal.SIGINT,
                                             signal.SIGTERM)) -> None:
        self._signums = signums
        self._previous: List[Tuple[int, object]] = []
        self._received: Optional[int] = None
        self._count = 0

    def __enter__(self) -> "SignalGuard":
        self._previous = [(signum, signal.getsignal(signum))
                          for signum in self._signums]
        for signum in self._signums:
            signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._restore()

    def _restore(self) -> None:
        for signum, handler in self._previous:
            signal.signal(signum, handler)  # type: ignore[arg-type]
        self._previous = []

    def _handle(self, signum: int,
                frame: Optional[FrameType]) -> None:
        self._count += 1
        if self._received is None:
            self._received = signum
        if self._count >= 2:
            # Second signal: the user means it. Stop deferring.
            self._restore()
            raise KeyboardInterrupt

    @property
    def triggered(self) -> Optional[int]:
        """The first deferred signal number, or None."""
        return self._received

    @property
    def exit_code(self) -> int:
        """``128 + signum`` of the deferred signal (0 if none)."""
        return 128 + self._received if self._received else 0

    def check(self) -> None:
        """Raise :class:`SweepInterrupted` if a signal is pending."""
        if self._received is not None:
            raise SweepInterrupted(self._received)
