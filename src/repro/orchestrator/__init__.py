"""Crash-safe sweep orchestration: manifest, journal, supervised run.

The layer between a parameter sweep and the processes that compute it.
A sweep is enumerated into a content-addressed manifest
(:mod:`.manifest`), executed unit-by-unit in killable child processes
with bounded retries and serial escalation (:mod:`.runner`), spooled
incrementally into a :class:`~repro.store.ColumnStore` with a
checksummed completion journal (:mod:`.journal`), and assembled into a
byte-reproducible corpus at the end — interrupt the run anywhere
(SIGKILL included) and ``resume`` produces the identical bytes.
:mod:`.signals` defers Ctrl-C to checkpoint boundaries;
:mod:`.sweeps` catalogues the runnable workloads.
"""

from .journal import Journal, JournalRecord
from .manifest import (
    ManifestError,
    SweepManifest,
    WorkUnit,
    build_manifest,
    canonical_json,
    content_key,
)
from .runner import (
    SweepConfigError,
    SweepError,
    SweepResult,
    SweepRunner,
    SweepSpec,
    SweepStatus,
    UnitFailedError,
)
from .signals import SignalGuard, SweepInterrupted
from .sweeps import build_sweep, list_kinds

__all__ = [
    "Journal",
    "JournalRecord",
    "ManifestError",
    "SignalGuard",
    "SweepConfigError",
    "SweepError",
    "SweepInterrupted",
    "SweepManifest",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SweepStatus",
    "UnitFailedError",
    "WorkUnit",
    "build_manifest",
    "build_sweep",
    "canonical_json",
    "content_key",
    "list_kinds",
]
