"""Plain-text tables for bench and example output.

The benches regenerate the paper's tables and figure series as text;
this tiny formatter keeps their output aligned and diff-friendly
without pulling in any dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class TextTable:
    """A fixed-width table: headers plus rows of stringifiable cells."""

    headers: Sequence[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, *cells) -> "TextTable":
        """Append one row; cells are formatted with ``str``."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append([str(c) for c in cells])
        return self

    def render(self, indent: str = "") -> str:
        """The table as aligned text (left column left-aligned, rest
        right-aligned, like the paper's tables)."""
        columns = list(zip(*([list(self.headers)] + self.rows)))
        widths = [max(len(cell) for cell in column) for column in columns]

        def fmt(cells):
            parts = [cells[0].ljust(widths[0])]
            parts += [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
            return indent + "  ".join(parts)

        rule = indent + "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [fmt(list(self.headers)), rule]
        lines += [fmt(row) for row in self.rows]
        return "\n".join(lines)


def fmt_float(value: float, digits: int = 2) -> str:
    """Uniform float formatting for table cells."""
    return f"{value:.{digits}f}"
