"""Terminal line plots, dependency-free.

The benches regenerate the paper's *figures*; a text table shows the
numbers, but a shape claim ("rises to a peak at 16 mm", "collapses
past 33 cm/s") is easier to eyeball as a curve.  This renders one or
two series into a character grid with labelled axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Markers assigned to successive series.
SERIES_MARKERS = "*o+x"


@dataclass
class AsciiPlot:
    """A small scatter/line canvas.

    Add one or more series, then :meth:`render`.  Axis ranges come
    from the data (optionally overridden); each series is drawn with
    its own marker, later series over earlier ones.
    """

    width: int = 64
    height: int = 16
    x_label: str = ""
    y_label: str = ""
    x_range: Optional[Tuple[float, float]] = None
    y_range: Optional[Tuple[float, float]] = None

    def __post_init__(self):
        if self.width < 8 or self.height < 4:
            raise ValueError("plot area too small to be readable")
        self._series: List[Tuple[str, list, list]] = []

    def add_series(self, name: str, xs: Sequence[float],
                   ys: Sequence[float]) -> "AsciiPlot":
        """Add one named series (marker auto-assigned)."""
        xs = [float(x) for x in xs]
        ys = [float(y) for y in ys]
        if len(xs) != len(ys):
            raise ValueError("x and y lengths differ")
        if not xs:
            raise ValueError("series needs at least one point")
        self._series.append((name, xs, ys))
        return self

    def _ranges(self) -> Tuple[float, float, float, float]:
        xs = [x for _, series_x, _ in self._series for x in series_x]
        ys = [y for _, _, series_y in self._series for y in series_y]
        x_lo, x_hi = self.x_range or (min(xs), max(xs))
        y_lo, y_hi = self.y_range or (min(ys), max(ys))
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    def render(self) -> str:
        """The plot as a multi-line string."""
        if not self._series:
            raise ValueError("nothing to plot")
        x_lo, x_hi, y_lo, y_hi = self._ranges()
        grid = [[" "] * self.width for _ in range(self.height)]

        def place(x, y, marker):
            col = int((x - x_lo) / (x_hi - x_lo) * (self.width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (self.height - 1))
            col = min(max(col, 0), self.width - 1)
            row = min(max(row, 0), self.height - 1)
            grid[self.height - 1 - row][col] = marker

        for index, (_, xs, ys) in enumerate(self._series):
            marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
            for x, y in zip(xs, ys):
                place(x, y, marker)

        lines = []
        top_label = f"{y_hi:g}"
        bottom_label = f"{y_lo:g}"
        pad = max(len(top_label), len(bottom_label))
        for i, row in enumerate(grid):
            if i == 0:
                prefix = top_label.rjust(pad)
            elif i == self.height - 1:
                prefix = bottom_label.rjust(pad)
            else:
                prefix = " " * pad
            lines.append(f"{prefix} |" + "".join(row))
        lines.append(" " * pad + " +" + "-" * self.width)
        x_axis = (f"{x_lo:g}".ljust(self.width // 2)
                  + f"{x_hi:g}".rjust(self.width - self.width // 2))
        lines.append(" " * pad + "  " + x_axis)
        footer_parts = []
        if self.x_label:
            footer_parts.append(f"x: {self.x_label}")
        if self.y_label:
            footer_parts.append(f"y: {self.y_label}")
        for index, (name, _, _) in enumerate(self._series):
            marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
            footer_parts.append(f"{marker} {name}")
        if footer_parts:
            lines.append(" " * pad + "  " + "   ".join(footer_parts))
        return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line intensity strip (eight levels) of a series."""
    blocks = " .:-=+*#"
    data = [float(v) for v in values]
    if not data:
        raise ValueError("nothing to sparkline")
    lo, hi = min(data), max(data)
    if hi == lo:
        hi = lo + 1.0
    # Downsample to width by taking bucket means.
    buckets = []
    n = len(data)
    for i in range(min(width, n)):
        start = i * n // min(width, n)
        end = max((i + 1) * n // min(width, n), start + 1)
        chunk = data[start:end]
        buckets.append(sum(chunk) / len(chunk))
    out = []
    for value in buckets:
        level = int((value - lo) / (hi - lo) * (len(blocks) - 1))
        out.append(blocks[level])
    return "".join(out)
