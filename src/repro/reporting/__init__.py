"""Text reporting helpers shared by benches and examples."""

from .ascii_plot import AsciiPlot, sparkline
from .table import TextTable, fmt_float

__all__ = ["AsciiPlot", "TextTable", "fmt_float", "sparkline"]
