"""Multi-wavelength (40G+) link designs: the Section 6 future work.

"For higher-bandwidth (40Gbps+) links, our designed TP mechanism
remains unchanged; however, the link would likely need customized
collimators that can efficiently capture a range of wavelengths
because the high-bandwidth single-strand transceivers use multiple
wavelengths."

A QSFP+ single-strand 40G module carries four 10G lanes on CWDM
wavelengths (1271/1291/1311/1331 nm).  A commodity collimator is
optimized for one wavelength; chromatic focal shift costs the outer
lanes extra coupling loss, and the *link* is only up when every lane's
budget closes.  This module quantifies that, including the paper's
proposed fix (an achromatic custom collimator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .design import LinkDesign, link_25g

#: CWDM4 lane grid used by single-strand 40G/100G transceivers (nm).
CWDM4_WAVELENGTHS_NM = (1271.0, 1291.0, 1311.0, 1331.0)

#: Chromatic excess coupling loss of a commodity singlet-based
#: collimator, per nm of offset from its design wavelength.  A few
#: dB across the CWDM band matches focal-shift arithmetic for an
#: f ~ 40 mm singlet coupling into a 50 um core.
COMMODITY_CHROMATIC_DB_PER_NM = 0.12

#: An achromatic (doublet / custom) collimator holds the focus across
#: the band -- the paper's "customized collimators" fix.
CUSTOM_CHROMATIC_DB_PER_NM = 0.015


@dataclass(frozen=True)
class LaneReport:
    """Budget state of one wavelength lane."""

    wavelength_nm: float
    chromatic_loss_db: float
    margin_db: float

    @property
    def closes(self) -> bool:
        return self.margin_db >= 0.0


@dataclass(frozen=True)
class MultiWavelengthDesign:
    """A 4-lane single-strand design on top of a base link design.

    The base design supplies the geometry, coupling widths, and
    per-lane rate; lanes differ only in their chromatic penalty.
    ``design_wavelength_nm`` is where the collimator focus is perfect.
    """

    name: str
    base: LinkDesign
    lane_wavelengths_nm: Tuple[float, ...] = CWDM4_WAVELENGTHS_NM
    lane_rate_gbps: float = 10.3125
    design_wavelength_nm: float = 1301.0  # band center
    chromatic_db_per_nm: float = COMMODITY_CHROMATIC_DB_PER_NM

    def chromatic_loss_db(self, wavelength_nm: float) -> float:
        """Extra coupling loss of a lane at ``wavelength_nm``."""
        offset = abs(wavelength_nm - self.design_wavelength_nm)
        return self.chromatic_db_per_nm * offset

    def lane_reports(self, range_m: Optional[float] = None) -> List[LaneReport]:
        """Per-lane budgets at a link range."""
        if range_m is None:
            range_m = self.base.design_range_m
        base_margin = self.base.margin_db(range_m)
        return [LaneReport(
                    wavelength_nm=wl,
                    chromatic_loss_db=self.chromatic_loss_db(wl),
                    margin_db=base_margin - self.chromatic_loss_db(wl))
                for wl in self.lane_wavelengths_nm]

    def worst_lane_margin_db(self, range_m: Optional[float] = None) -> float:
        """The binding lane's margin -- the whole link's headroom."""
        return min(r.margin_db for r in self.lane_reports(range_m))

    def is_feasible(self, range_m: Optional[float] = None) -> bool:
        """True when every lane's budget closes."""
        return all(r.closes for r in self.lane_reports(range_m))

    @property
    def aggregate_rate_gbps(self) -> float:
        return self.lane_rate_gbps * len(self.lane_wavelengths_nm)

    def worst_lane_angular_tolerance_rad(
            self, range_m: Optional[float] = None) -> float:
        """RX angular tolerance with the binding lane's margin.

        The chromatic penalty does not just shave static budget -- it
        shrinks the margin that movement tolerance is made of, so a
        commodity-collimator 40G link is *more fragile under motion*
        even where it is statically feasible.
        """
        import math

        from ..optics import EXCESS_DB_AT_WIDTH
        if range_m is None:
            range_m = self.base.design_range_m
        margin = self.worst_lane_margin_db(range_m)
        if margin <= 0:
            return 0.0
        width = self.base.angular_width_rad(range_m)
        return width * math.sqrt(margin / EXCESS_DB_AT_WIDTH)


def link_40g_commodity(base: Optional[LinkDesign] = None) -> MultiWavelengthDesign:
    """A 40G CWDM4 design with commodity (chromatic) collimators."""
    return MultiWavelengthDesign(
        name="40G CWDM4, commodity collimators",
        base=base if base is not None else link_25g())


def link_40g_custom(base: Optional[LinkDesign] = None) -> MultiWavelengthDesign:
    """The Section 6 fix: achromatic custom collimators."""
    return MultiWavelengthDesign(
        name="40G CWDM4, custom achromatic collimators",
        base=base if base is not None else link_25g(),
        chromatic_db_per_nm=CUSTOM_CHROMATIC_DB_PER_NM)
