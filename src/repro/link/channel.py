"""The end-to-end FSO channel: geometry in, received power out.

Given the TX assembly, the RX assembly, and the current true headset
pose, the channel traces both of Lemma 1's optical paths -- the real
beam leaving TX and the imaginary beam leaving RX -- and reduces their
mismatch to the two coupling scalars:

* **axis offset**: how far the RX's expected beam point (``p_r``) sits
  from the TX beam's centerline, i.e. which part of the (Gaussian)
  profile the receiver is sampling;
* **incidence angle**: the angle between the arriving *wavefront*
  direction at the receiver and the direction the RX optics expect.
  For a diverging beam the wavefront normal rotates as the receiver
  moves across the cone (finite curvature radius), which is exactly why
  linear headset motion consumes the link's angular tolerance
  (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import NoIntersectionError, angle_between, normalize
from ..vrh import Pose, RxAssembly, TxAssembly
from .design import NOISE_FLOOR_DBM, LinkDesign

#: Minimum believable propagation distance; guards degenerate geometry.
MIN_RANGE_M = 1e-3


@dataclass(frozen=True)
class AlignmentState:
    """Everything the channel knows about the link at one instant."""

    received_power_dbm: float
    axis_offset_m: float
    incidence_angle_rad: float
    range_m: float
    connected: bool


@dataclass(frozen=True)
class LemmaPoints:
    """The four Lemma 1 points: originating and target, both ends."""

    p_t: np.ndarray
    tau_t: np.ndarray
    p_r: np.ndarray
    tau_r: np.ndarray

    @property
    def error(self) -> float:
        """``d(p_t, tau_r) + d(p_r, tau_t)`` -- the Section 4.2 error."""
        return (float(np.linalg.norm(self.p_t - self.tau_r))
                + float(np.linalg.norm(self.p_r - self.tau_t)))


@dataclass
class FsoChannel:
    """Physics of one TX-to-RX FSO link."""

    design: LinkDesign
    tx: TxAssembly
    rx: RxAssembly

    def evaluate(self, body_pose: Pose) -> AlignmentState:
        """Received power and misalignment for the current GM voltages."""
        tx_beam = self.tx.world_beam()
        rx_beam = self.rx.world_beam(body_pose)
        p_r = rx_beam.origin

        # Where along the TX beam the receiver sits, and how far off axis.
        closest = tx_beam.closest_point_to(p_r)
        range_m = max(float(np.linalg.norm(closest - tx_beam.origin)),
                      MIN_RANGE_M)
        axis_offset = float(np.linalg.norm(p_r - closest))

        # The arriving wavefront direction at the receiver.
        curvature = self.design.beam.curvature_radius_m(range_m)
        if np.isinf(curvature):
            wavefront = tx_beam.direction
        else:
            wavefront = normalize(
                tx_beam.direction + (p_r - closest) / curvature)
        # Behind the transmitter there is no light at all.
        behind = float(np.dot(p_r - tx_beam.origin, tx_beam.direction)) <= 0

        incidence = angle_between(wavefront, -rx_beam.direction)
        coupling = self.design.coupling(range_m)
        power = coupling.received_power_dbm(axis_offset, incidence)
        power = max(power, NOISE_FLOOR_DBM)
        if behind:
            power = NOISE_FLOOR_DBM
        connected = self.design.sfp.signal_detected(power)
        return AlignmentState(
            received_power_dbm=power,
            axis_offset_m=axis_offset,
            incidence_angle_rad=incidence,
            range_m=range_m,
            connected=connected,
        )

    def received_power_dbm(self, body_pose: Pose) -> float:
        """Shortcut for power-only queries (the alignment search)."""
        return self.evaluate(body_pose).received_power_dbm

    def lemma_points(self, body_pose: Pose) -> LemmaPoints:
        """Lemma 1's two originating/target point pairs (world frame).

        ``tau_t`` is where the TX beam strikes the RX GM's second-mirror
        plane; ``tau_r`` is where the imaginary RX beam strikes the TX
        GM's second-mirror plane.  Raises
        :class:`repro.geometry.NoIntersectionError` when either beam
        misses the other terminal's mirror plane entirely.
        """
        tx_beam = self.tx.world_beam()
        rx_beam = self.rx.world_beam(body_pose)
        rx_mirror = self.rx.world_second_mirror_plane(body_pose)
        tx_mirror = self.tx.world_second_mirror_plane()
        tau_t = rx_mirror.intersect_ray(tx_beam)
        tau_r = tx_mirror.intersect_ray(rx_beam, forward_only=False)
        return LemmaPoints(p_t=tx_beam.origin, tau_t=tau_t,
                           p_r=rx_beam.origin, tau_r=tau_r)
