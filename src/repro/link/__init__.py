"""End-to-end FSO link: designs, channel physics, link-layer state."""

from .channel import AlignmentState, FsoChannel, LemmaPoints
from .design import (
    NOISE_FLOOR_DBM,
    LinkDesign,
    link_10g_collimated,
    link_10g_diverging,
    link_25g,
)
from .multiwavelength import (
    CWDM4_WAVELENGTHS_NM,
    LaneReport,
    MultiWavelengthDesign,
    link_40g_commodity,
    link_40g_custom,
)
from .state import LinkStateMachine
from .tolerance import (
    ToleranceReport,
    diameter_sweep,
    evaluate,
    lateral_tolerance_m,
    rx_angular_tolerance_rad,
    tx_angular_tolerance_rad,
)

__all__ = [
    "AlignmentState",
    "FsoChannel",
    "LemmaPoints",
    "LinkDesign",
    "LinkStateMachine",
    "LaneReport",
    "MultiWavelengthDesign",
    "CWDM4_WAVELENGTHS_NM",
    "link_40g_commodity",
    "link_40g_custom",
    "NOISE_FLOOR_DBM",
    "ToleranceReport",
    "diameter_sweep",
    "evaluate",
    "lateral_tolerance_m",
    "link_10g_collimated",
    "link_10g_diverging",
    "link_25g",
    "rx_angular_tolerance_rad",
    "tx_angular_tolerance_rad",
]
