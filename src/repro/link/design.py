"""Link designs: the optical configurations of Section 5.1 and 5.3.1.

A :class:`LinkDesign` bundles the transceiver, amplifier, launch beam,
and receive collimator, and produces the calibrated
:class:`repro.optics.CouplingModel` for any link range.  Three designs
are provided, matching the paper's prototypes:

* ``link_10g_diverging`` -- adjustable aspheric collimator at TX, fixed
  F810FC-1550 at RX, diverging beam with a chosen diameter at RX
  (16 mm optimal, Fig. 11);
* ``link_10g_collimated`` -- 20 mm collimated beam via a beam expander
  (the Table 1 alternative);
* ``link_25g`` -- SFP28 with adjustable-focus C40FC-C collimators
  (Section 5.3.1).

Calibration
-----------
The coupling widths and fixed losses below are *calibrated once* against
the paper's measured operating points (Table 1, Fig. 11, Section 5.3.1)
and then never touched again: every downstream result -- tolerance
sweeps, speed thresholds, trace availability -- is emergent.  The
structure is physical:

* peak power = TX + amplifier - fixed insertion/mode loss - defocus
  blur loss (focused spot vs fiber core) - aperture capture loss;
* lateral width scales with beam diameter (how far the lens can slide
  across the Gaussian profile);
* angular width grows with beam diameter but saturates
  (``d^2 / (d^2 + d_sat^2)``), which together with the shrinking power
  margin puts the RX angular tolerance peak at 16 mm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import constants
from ..optics import (
    Amplifier,
    C40FC_C,
    CFC_2X_C,
    Collimator,
    CouplingModel,
    F810FC_1550,
    GaussianBeam,
    LinkBudget,
    SFP28_LR,
    SFP_10G_ZR,
    Sfp,
    divergence_for_diameter,
)

# Calibrated constants (see module docstring and DESIGN.md Section 5).
FIXED_LOSS_10G_DIVERGING_DB = 10.918   # anchors peak(-10 dBm) at 20 mm
FIXED_LOSS_10G_COLLIMATED_DB = 5.0     # anchors peak(+15 dBm)
FIXED_LOSS_25G_DB = 9.0                # 2-3 dB better coupling (C40FC)
LATERAL_WIDTH_COEFF_10G = 0.61866      # anchors TX tol 15.81 mrad @ 20 mm
LATERAL_WIDTH_COEFF_25G = 0.3125       # anchors ~6 mm linear tolerance
ANGULAR_WIDTH_COEFF_10G = 2.79266e-3   # anchors RX tol peak 5.77 mrad
ANGULAR_WIDTH_COEFF_25G = 5.95342e-3   # anchors RX tol 8.73 mrad @ 16 mm
ANGULAR_SAT_DIAMETER_M = 6.44827e-3    # puts the RX tol peak at 16 mm
COLLIMATED_LATERAL_SLACK_M = 0.46e-3   # anchors TX tol 2.00 mrad
COLLIMATED_ANGULAR_FACTOR = 0.92736    # anchors RX tol 2.28 mrad
LAUNCH_WAIST_DIAMETER_M = 2e-3         # fiber collimator output beam
NOISE_FLOOR_DBM = -42.0                # photodetector reading floor


@dataclass(frozen=True)
class LinkDesign:
    """One optical link configuration, rate-agnostic physics included."""

    name: str
    sfp: Sfp
    amplifier: Amplifier
    beam: GaussianBeam
    rx_collimator: Collimator
    design_range_m: float
    fixed_loss_db: float
    lateral_width_coeff: float
    angular_width_coeff: float
    diverging: bool

    # -- power accounting ----------------------------------------------------

    def beam_diameter_at(self, range_m: float) -> float:
        """Beam diameter at the receiver for a given range."""
        return self.beam.diameter_at(range_m)

    def blur_loss_db(self, range_m: float) -> float:
        """Defocus loss: a diverging arrival focuses to a blurred spot.

        The blur diameter at the fiber tip is approximately
        ``f * d / L`` (focal length times the arrival cone's full
        angle); power couples in proportion to core-to-blur area.
        """
        d = self.beam_diameter_at(range_m)
        f = self.rx_collimator.focal_length_m
        core = self.rx_collimator.fiber_core_m
        blur = f * d / range_m if self.diverging else core
        return 20.0 * math.log10(max(1.0, blur / core))

    def capture_loss_db(self, range_m: float) -> float:
        """Loss from the lens aperture truncating the Gaussian profile."""
        fraction = self.beam.intensity_fraction_within(
            self.rx_collimator.aperture_m, range_m)
        if fraction <= 0.0:
            return math.inf
        return -10.0 * math.log10(fraction)

    def budget(self, range_m: float) -> LinkBudget:
        """Full link budget at a given range, stage by stage."""
        budget = LinkBudget(self.sfp.tx_power_dbm)
        budget.add("amplifier", self.amplifier.gain_db)
        budget.add("insertion/mode loss", -self.fixed_loss_db)
        budget.add("defocus blur", -self.blur_loss_db(range_m))
        budget.add("aperture capture", -self.capture_loss_db(range_m))
        return budget

    def peak_power_dbm(self, range_m: float) -> float:
        """Received power when perfectly aligned at ``range_m``."""
        return self.budget(range_m).received_power_dbm

    def margin_db(self, range_m: float) -> float:
        """Headroom above the SFP sensitivity when aligned."""
        return self.peak_power_dbm(range_m) - self.sfp.rx_sensitivity_dbm

    # -- coupling widths -----------------------------------------------------

    def lateral_width_m(self, range_m: float) -> float:
        """Lateral misalignment accruing 3 dB of excess loss."""
        d = self.beam_diameter_at(range_m)
        if self.diverging:
            return self.lateral_width_coeff * d
        slack = max(self.rx_collimator.aperture_m - d, 0.0) / 2.0
        return slack + COLLIMATED_LATERAL_SLACK_M

    def angular_width_rad(self, range_m: float) -> float:
        """Incidence-angle misalignment accruing 3 dB of excess loss."""
        if self.diverging:
            d = self.beam_diameter_at(range_m)
            saturation = d * d / (d * d + ANGULAR_SAT_DIAMETER_M ** 2)
            return self.angular_width_coeff * saturation
        f = self.rx_collimator.focal_length_m
        core = self.rx_collimator.fiber_core_m
        return COLLIMATED_ANGULAR_FACTOR * core / (2.0 * f)

    def coupling(self, range_m: float) -> CouplingModel:
        """The calibrated coupling model at a given range."""
        return CouplingModel(
            peak_power_dbm=self.peak_power_dbm(range_m),
            lateral_width_m=self.lateral_width_m(range_m),
            angular_width_rad=self.angular_width_rad(range_m),
        )


def link_10g_diverging(
        beam_diameter_at_rx_m: float = constants.OPTIMAL_BEAM_DIAMETER_AT_RX_M,
        design_range_m: float = constants.LINK_RANGE_NOMINAL_M) -> LinkDesign:
    """The paper's main 10G design: diverging beam, 16 mm at RX."""
    divergence = divergence_for_diameter(
        beam_diameter_at_rx_m, design_range_m, LAUNCH_WAIST_DIAMETER_M)
    beam = GaussianBeam(LAUNCH_WAIST_DIAMETER_M, divergence,
                        wavelength_m=constants.SFP_10G_WAVELENGTH_NM * 1e-9)
    return LinkDesign(
        name=f"10G diverging ({beam_diameter_at_rx_m * 1e3:.0f}mm at RX)",
        sfp=SFP_10G_ZR,
        amplifier=Amplifier(constants.AMPLIFIER_GAIN_DB),
        beam=beam,
        rx_collimator=F810FC_1550,
        design_range_m=design_range_m,
        fixed_loss_db=FIXED_LOSS_10G_DIVERGING_DB,
        lateral_width_coeff=LATERAL_WIDTH_COEFF_10G,
        angular_width_coeff=ANGULAR_WIDTH_COEFF_10G,
        diverging=True,
    )


def link_10g_collimated(
        beam_diameter_m: float = 20e-3,
        design_range_m: float = constants.LINK_RANGE_NOMINAL_M) -> LinkDesign:
    """Table 1's alternative: a wide collimated beam via a beam expander."""
    wavelength = constants.SFP_10G_WAVELENGTH_NM * 1e-9
    probe = GaussianBeam(beam_diameter_m, 0.0, wavelength)
    beam = GaussianBeam(beam_diameter_m,
                        probe.diffraction_limited_divergence_rad, wavelength)
    return LinkDesign(
        name=f"10G collimated ({beam_diameter_m * 1e3:.0f}mm)",
        sfp=SFP_10G_ZR,
        amplifier=Amplifier(constants.AMPLIFIER_GAIN_DB),
        beam=beam,
        rx_collimator=F810FC_1550,
        design_range_m=design_range_m,
        fixed_loss_db=FIXED_LOSS_10G_COLLIMATED_DB,
        lateral_width_coeff=0.0,   # unused for collimated profiles
        angular_width_coeff=0.0,   # unused for collimated profiles
        diverging=False,
    )


def link_25g(
        beam_diameter_at_rx_m: float = constants.OPTIMAL_BEAM_DIAMETER_AT_RX_M,
        design_range_m: float = constants.LINK_RANGE_NOMINAL_M) -> LinkDesign:
    """The 25G prototype: SFP28 with adjustable-focus C40FC collimators."""
    divergence = divergence_for_diameter(
        beam_diameter_at_rx_m, design_range_m, LAUNCH_WAIST_DIAMETER_M)
    beam = GaussianBeam(LAUNCH_WAIST_DIAMETER_M, divergence,
                        wavelength_m=constants.SFP_25G_WAVELENGTH_NM * 1e-9)
    return LinkDesign(
        name="25G diverging (C40FC)",
        sfp=SFP28_LR,
        amplifier=Amplifier(constants.AMPLIFIER_GAIN_DB),
        beam=beam,
        rx_collimator=C40FC_C,
        design_range_m=design_range_m,
        fixed_loss_db=FIXED_LOSS_25G_DB,
        lateral_width_coeff=LATERAL_WIDTH_COEFF_25G,
        angular_width_coeff=ANGULAR_WIDTH_COEFF_25G,
        diverging=True,
    )
