"""Link movement-tolerance evaluation (Section 5.1's two metrics).

Computes, for any :class:`repro.link.LinkDesign`:

* **RX angular tolerance** -- how far the receiver can rotate from the
  aligned position before the link disconnects;
* **TX angular tolerance** -- how far the launched beam can be
  mis-steered (equivalently, how far the receiver can sit off the beam
  axis, divided by range);
* **lateral tolerance** -- how far the receiver can translate.  For a
  diverging beam a translation both slides the receiver across the
  profile *and* rotates the arriving wavefront, so both coupling terms
  spend the margin simultaneously.

These are the quantities of Table 1 and the Fig. 11 sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..optics import EXCESS_DB_AT_WIDTH
from .design import LinkDesign


@dataclass(frozen=True)
class ToleranceReport:
    """Movement tolerances of one design at one range."""

    design_name: str
    range_m: float
    beam_diameter_at_rx_m: float
    peak_power_dbm: float
    tx_angular_tolerance_rad: float
    rx_angular_tolerance_rad: float
    lateral_tolerance_m: float


def rx_angular_tolerance_rad(design: LinkDesign, range_m: float) -> float:
    """Max pure receiver rotation keeping the link connected."""
    coupling = design.coupling(range_m)
    return coupling.angular_tolerance_rad(design.sfp.rx_sensitivity_dbm)


def tx_angular_tolerance_rad(design: LinkDesign, range_m: float) -> float:
    """Max pure beam-steering error at TX keeping the link connected.

    A steering error of ``theta`` parks the receiver ``range * theta``
    off the beam axis; for a diverging beam the wavefront still arrives
    from the (unmoved) apex, so only the lateral term pays.
    """
    coupling = design.coupling(range_m)
    lateral = coupling.lateral_tolerance_m(design.sfp.rx_sensitivity_dbm)
    return lateral / range_m


def lateral_tolerance_m(design: LinkDesign, range_m: float) -> float:
    """Max pure receiver translation keeping the link connected."""
    coupling = design.coupling(range_m)
    margin = coupling.margin_db(design.sfp.rx_sensitivity_dbm)
    if margin <= 0:
        return 0.0
    lateral_term = 1.0 / coupling.lateral_width_m ** 2
    if design.diverging:
        # Translation delta also rotates the arrival direction by
        # delta / R(range); for our strongly diverging beams R ~ range.
        curvature = design.beam.curvature_radius_m(range_m)
        angular_term = 1.0 / (curvature * coupling.angular_width_rad) ** 2
    else:
        angular_term = 0.0
    return math.sqrt(margin / EXCESS_DB_AT_WIDTH
                     / (lateral_term + angular_term))


def evaluate(design: LinkDesign,
             range_m: Optional[float] = None) -> ToleranceReport:
    """Full tolerance report for a design (Table 1 row)."""
    if range_m is None:
        range_m = design.design_range_m
    return ToleranceReport(
        design_name=design.name,
        range_m=range_m,
        beam_diameter_at_rx_m=design.beam_diameter_at(range_m),
        peak_power_dbm=design.peak_power_dbm(range_m),
        tx_angular_tolerance_rad=tx_angular_tolerance_rad(design, range_m),
        rx_angular_tolerance_rad=rx_angular_tolerance_rad(design, range_m),
        lateral_tolerance_m=lateral_tolerance_m(design, range_m),
    )


def diameter_sweep(design_factory: Callable[[float], LinkDesign],
                   diameters_m: Iterable[float],
                   range_m: float) -> List[ToleranceReport]:
    """Fig. 11's sweep: tolerances vs beam diameter at RX.

    ``design_factory`` maps a beam diameter to a :class:`LinkDesign`
    (e.g. ``repro.link.link_10g_diverging``).
    """
    return [evaluate(design_factory(d), range_m) for d in diameters_m]
