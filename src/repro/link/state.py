"""Link-layer state: signal detection vs usable link.

The paper observes that "once the link is lost, it takes a few seconds
to regain the link, partly due to the SFPs taking a few seconds to
report that the link is up, after receiving the light" (Section 5.3).
:class:`LinkStateMachine` models that asymmetry: loss of signal drops
the link immediately; a restored signal must persist for the SFP's
re-lock delay before traffic flows again.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from ..optics import Sfp


@dataclass
class LinkStateMachine:
    """Tracks usable-link state from a time series of signal samples."""

    sfp: Sfp
    initially_up: bool = True

    def __post_init__(self) -> None:
        self._up = self.initially_up
        # When the signal became continuously present; -inf means
        # "for as long as we have been watching".
        self._signal_since = -math.inf if self.initially_up else None
        self._last_time = -math.inf
        self._up_time_s = 0.0
        self._observed_s = 0.0

    @property
    def link_up(self) -> bool:
        """Whether traffic currently flows."""
        return self._up

    @property
    def signal_present(self) -> bool:
        """Whether light is currently detected (up or mid-re-lock)."""
        return self._signal_since is not None

    @property
    def up_time_s(self) -> float:
        """Total time the link was usable, over all observed samples."""
        return self._up_time_s

    @property
    def observed_s(self) -> float:
        """Total time spanned by the observe() calls so far."""
        return self._observed_s

    @property
    def uptime_fraction(self) -> float:
        """Time-weighted availability over everything observed."""
        if self._observed_s <= 0.0:
            return 1.0 if self._up else 0.0
        return self._up_time_s / self._observed_s

    def relock_remaining_s(self, time_s: float) -> float:
        """Seconds of continuous signal still needed before traffic.

        Zero when the link is already up; the full re-lock delay when
        no signal is present at all.
        """
        if self._up:
            return 0.0
        if self._signal_since is None:
            return self.sfp.relock_delay_s
        return max(self.sfp.relock_delay_s - (time_s - self._signal_since),
                   0.0)

    def observe(self, time_s: float, received_power_dbm: float) -> bool:
        """Feed one power sample; returns the resulting link state.

        Samples must arrive in non-decreasing time order.
        """
        if time_s < self._last_time:
            raise ValueError("samples must be time-ordered")
        if math.isfinite(self._last_time):
            # The interval (last_time, time_s] carried the *previous*
            # state; account for it before transitioning.
            gap = time_s - self._last_time
            self._observed_s += gap
            if self._up:
                self._up_time_s += gap
        self._last_time = time_s
        if not self.sfp.signal_detected(received_power_dbm):
            self._up = False
            self._signal_since = None
            return self._up
        if self._signal_since is None:
            self._signal_since = time_s
        if not self._up:
            waited = time_s - self._signal_since
            if waited >= self.sfp.relock_delay_s:
                self._up = True
        return self._up

    def throughput_gbps(self) -> float:
        """Instantaneous goodput: optimal when up, zero when down."""
        return self.sfp.optimal_throughput_gbps if self._up else 0.0
