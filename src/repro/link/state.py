"""Link-layer state: signal detection vs usable link.

The paper observes that "once the link is lost, it takes a few seconds
to regain the link, partly due to the SFPs taking a few seconds to
report that the link is up, after receiving the light" (Section 5.3).
:class:`LinkStateMachine` models that asymmetry: loss of signal drops
the link immediately; a restored signal must persist for the SFP's
re-lock delay before traffic flows again.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from ..optics import Sfp


@dataclass
class LinkStateMachine:
    """Tracks usable-link state from a time series of signal samples."""

    sfp: Sfp
    initially_up: bool = True

    def __post_init__(self):
        self._up = self.initially_up
        # When the signal became continuously present; -inf means
        # "for as long as we have been watching".
        self._signal_since = -math.inf if self.initially_up else None
        self._last_time = -math.inf

    @property
    def link_up(self) -> bool:
        """Whether traffic currently flows."""
        return self._up

    def observe(self, time_s: float, received_power_dbm: float) -> bool:
        """Feed one power sample; returns the resulting link state.

        Samples must arrive in non-decreasing time order.
        """
        if time_s < self._last_time:
            raise ValueError("samples must be time-ordered")
        self._last_time = time_s
        if not self.sfp.signal_detected(received_power_dbm):
            self._up = False
            self._signal_since = None
            return self._up
        if self._signal_since is None:
            self._signal_since = time_s
        if not self._up:
            waited = time_s - self._signal_since
            if waited >= self.sfp.relock_delay_s:
                self._up = True
        return self._up

    def throughput_gbps(self) -> float:
        """Instantaneous goodput: optimal when up, zero when down."""
        return self.sfp.optimal_throughput_gbps if self._up else 0.0
