"""Optics substrate: beams, collimators, coupling, SFPs, link budgets."""

from .amplifier import Amplifier
from .budget import LinkBudget
from .collimator import (
    BE02_05_C,
    BeamExpander,
    C40FC_C,
    CFC_2X_C,
    Collimator,
    F810FC_1550,
)
from .coupling import EXCESS_DB_AT_WIDTH, CouplingModel
from .gaussian import GaussianBeam, divergence_for_diameter
from .photodiode import QuadPhotodiode
from .safety import (
    PUPIL_DIAMETER_M,
    SafetyReport,
    assess_design,
    class1_limit_mw,
    hazard_distance_m,
    is_class1_at,
    power_through_pupil_mw,
)
from .sfp import SFP28_LR, SFP_10G_ZR, Sfp
from .units import (
    MIN_POWER_DBM,
    MIN_RATIO_DB,
    apply_gain_dbm,
    db_to_linear,
    dbm_to_mw,
    linear_to_db,
    mw_to_dbm,
)

__all__ = [
    "Amplifier",
    "BE02_05_C",
    "BeamExpander",
    "C40FC_C",
    "CFC_2X_C",
    "Collimator",
    "CouplingModel",
    "EXCESS_DB_AT_WIDTH",
    "F810FC_1550",
    "GaussianBeam",
    "LinkBudget",
    "MIN_POWER_DBM",
    "MIN_RATIO_DB",
    "PUPIL_DIAMETER_M",
    "QuadPhotodiode",
    "SafetyReport",
    "SFP28_LR",
    "SFP_10G_ZR",
    "Sfp",
    "apply_gain_dbm",
    "assess_design",
    "class1_limit_mw",
    "db_to_linear",
    "dbm_to_mw",
    "hazard_distance_m",
    "is_class1_at",
    "divergence_for_diameter",
    "linear_to_db",
    "mw_to_dbm",
    "power_through_pupil_mw",
]
