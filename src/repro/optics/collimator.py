"""Collimators and beam expanders: the launch and capture optics.

The prototype (Appendix A) uses:

* ``CFC-2X-C`` adjustable aspheric collimator at TX for the diverging
  beam (divergence is tunable);
* ``F810FC-1550`` fixed collimator at RX (21 mm clear aperture,
  f = 37.13 mm) capturing into a 50 um multimode fiber;
* ``BE02-05-C`` beam expander for the wide collimated beam option;
* ``C40FC-C`` adjustable-focus collimators for the 25G link, which buy a
  2-3 dB coupling improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

from .gaussian import GaussianBeam, divergence_for_diameter


@dataclass(frozen=True)
class Collimator:
    """A fiber-coupled collimating lens.

    ``aperture_m`` is the clear aperture; ``focal_length_m`` and
    ``fiber_core_m`` set how an arriving beam focuses onto the fiber
    tip, which drives angular coupling sensitivity downstream.
    """

    name: str
    aperture_m: float
    focal_length_m: float
    fiber_core_m: float

    def __post_init__(self) -> None:
        if min(self.aperture_m, self.focal_length_m, self.fiber_core_m) <= 0:
            raise ValueError("all collimator dimensions must be positive")

    def launch_collimated(self, waist_diameter_m: float,
                          wavelength_m: float = 1550e-9) -> GaussianBeam:
        """Launch a (near) diffraction-limited collimated beam."""
        beam = GaussianBeam(waist_diameter_m, 0.0, wavelength_m)
        return GaussianBeam(waist_diameter_m,
                            beam.diffraction_limited_divergence_rad,
                            wavelength_m)

    def launch_diverging(self, waist_diameter_m: float,
                         target_diameter_m: float, range_m: float,
                         wavelength_m: float = 1550e-9) -> GaussianBeam:
        """Launch a deliberately diverging beam.

        The divergence is chosen so the beam reaches
        ``target_diameter_m`` at ``range_m`` -- the knob the adjustable
        aspheric collimator exposes.
        """
        divergence = divergence_for_diameter(
            target_diameter_m, range_m, waist_diameter_m)
        return GaussianBeam(waist_diameter_m, divergence, wavelength_m)


@dataclass(frozen=True)
class BeamExpander:
    """A fixed-magnification beam expander (e.g. ThorLabs BE02-05-C)."""

    magnification: float

    def __post_init__(self) -> None:
        if self.magnification <= 0:
            raise ValueError("magnification must be positive")

    def expand(self, beam: GaussianBeam) -> GaussianBeam:
        """Widen the waist by the magnification; divergence shrinks by
        the same factor (etendue is conserved)."""
        return GaussianBeam(
            beam.waist_diameter_m * self.magnification,
            beam.divergence_rad / self.magnification,
            beam.wavelength_m,
        )


# Catalogue entries used by the prototype, dimensions from datasheets.
F810FC_1550 = Collimator(
    name="F810FC-1550", aperture_m=21e-3, focal_length_m=37.13e-3,
    fiber_core_m=50e-6)
CFC_2X_C = Collimator(
    name="CFC-2X-C", aperture_m=4.6e-3, focal_length_m=2.0e-3,
    fiber_core_m=9e-6)
C40FC_C = Collimator(
    name="C40FC-C", aperture_m=40e-3, focal_length_m=40.0e-3,
    fiber_core_m=50e-6)
BE02_05_C = BeamExpander(magnification=5.0)
