"""Gaussian-beam propagation.

The link design (Section 5.1) chooses between a wide collimated beam and
a diverging beam sized to a target diameter at the receiver.  Both are
Gaussian beams; this module gives diameter-at-range, divergence, and the
divergence needed to reach a given diameter at a given range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class GaussianBeam:
    """A Gaussian beam leaving the transmitter collimator.

    ``waist_diameter_m`` is the 1/e^2 intensity diameter at the launch
    aperture; ``divergence_rad`` is the *half-angle* far-field divergence.
    A collimated beam has divergence near the diffraction limit; the
    adjustable collimator dials in a larger divergence on purpose.
    """

    waist_diameter_m: float
    divergence_rad: float
    wavelength_m: float = 1550e-9

    def __post_init__(self) -> None:
        if self.waist_diameter_m <= 0:
            raise ValueError("waist diameter must be positive")
        if self.divergence_rad < 0:
            raise ValueError("divergence cannot be negative")
        if self.wavelength_m <= 0:
            raise ValueError("wavelength must be positive")

    @property
    def diffraction_limited_divergence_rad(self) -> float:
        """Half-angle divergence floor ``lambda / (pi w0)`` for this waist."""
        waist_radius = self.waist_diameter_m / 2.0
        return self.wavelength_m / (math.pi * waist_radius)

    def diameter_at(self, range_m: float) -> float:
        """1/e^2 beam diameter after propagating ``range_m``.

        Uses the hyperbolic Gaussian profile
        ``d(z) = sqrt(d0^2 + (2 theta z)^2)`` which is exact in the
        far field and a safe upper bound near the waist.
        """
        if range_m < 0:
            raise ValueError("range must be non-negative")
        spread = 2.0 * self.divergence_rad * range_m
        return math.hypot(self.waist_diameter_m, spread)

    @property
    def effective_rayleigh_range_m(self) -> float:
        """Distance over which the beam stays roughly collimated.

        For a deliberately defocused (geometrically diverging) beam this
        is ``waist_radius / divergence``; for a well-collimated beam it
        is large.  Governs the wavefront curvature below.
        """
        if self.divergence_rad <= 0:
            return math.inf
        return (self.waist_diameter_m / 2.0) / self.divergence_rad

    def curvature_radius_m(self, range_m: float) -> float:
        """Wavefront radius of curvature at ``range_m``.

        ``R(z) = z (1 + (zR / z)^2)``.  A strongly diverging beam has
        ``R ~ z`` (rays appear to emanate from the launch point), so a
        receiver translating across the cone sees the arrival direction
        rotate -- the effect that couples linear VRH motion into the
        link's *angular* tolerance budget (Section 5.1).  A collimated
        beam has ``R -> inf``: translation leaves incidence unchanged.
        """
        if range_m <= 0:
            raise ValueError("range must be positive")
        zr = self.effective_rayleigh_range_m
        if math.isinf(zr):
            return math.inf
        return range_m * (1.0 + (zr / range_m) ** 2)

    def intensity_fraction_within(self, aperture_diameter_m: float,
                                  range_m: float) -> float:
        """Fraction of total power within a centered circular aperture.

        For a Gaussian beam of 1/e^2 diameter ``d`` a circular aperture of
        diameter ``a`` collects ``1 - exp(-2 a^2 / d^2)``.
        """
        if aperture_diameter_m <= 0:
            return 0.0
        d = self.diameter_at(range_m)
        return 1.0 - math.exp(-2.0 * (aperture_diameter_m / d) ** 2)


def divergence_for_diameter(target_diameter_m: float, range_m: float,
                            waist_diameter_m: float) -> float:
    """Half-angle divergence making the beam ``target_diameter_m`` wide
    at ``range_m``, starting from ``waist_diameter_m`` at the launch.

    This is how the adjustable aspheric collimator is "focused" in the
    prototype: pick the beam diameter at RX, derive the divergence.
    Raises ``ValueError`` when the target is narrower than the waist
    (a passive collimator cannot shrink the far-field beam below it).
    """
    if range_m <= 0:
        raise ValueError("range must be positive")
    if target_diameter_m < waist_diameter_m:
        raise ValueError(
            "target diameter at RX cannot be below the launch waist")
    spread = math.sqrt(target_diameter_m ** 2 - waist_diameter_m ** 2)
    return spread / (2.0 * range_m)
