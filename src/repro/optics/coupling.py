"""Fiber-coupling model: received power vs misalignment.

The channel simulator reduces all geometry to two scalars at the RX
collimator lens:

* ``lateral_offset_m`` -- distance between the beam centerline and the
  lens center, measured in the lens plane;
* ``incidence_angle_rad`` -- angle between the beam and the lens axis
  (0 = the perpendicular incidence the paper requires for maximum
  received power).

Coupling loss is modelled as a base (aligned) loss plus *excess* loss
that is quadratic in dB in each normalized misalignment -- i.e. a
Gaussian roll-off in linear power, which matches both Gaussian-beam
overlap integrals and the paper's measured power-vs-misalignment curves
qualitatively.  The width parameters are set per link design in
``repro.link.design`` and calibrated against Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from .units import MIN_POWER_DBM

#: Excess loss, in dB, accrued at exactly one misalignment width.
EXCESS_DB_AT_WIDTH = 3.0


@dataclass(frozen=True)
class CouplingModel:
    """Quadratic-in-dB coupling roll-off around perfect alignment.

    ``peak_power_dbm`` is the received power when perfectly aligned;
    ``lateral_width_m`` and ``angular_width_rad`` are the misalignments
    at which 3 dB of excess loss accrues (independently per axis).
    """

    peak_power_dbm: float
    lateral_width_m: float
    angular_width_rad: float

    def __post_init__(self) -> None:
        if self.lateral_width_m <= 0 or self.angular_width_rad <= 0:
            raise ValueError("coupling widths must be positive")

    def excess_loss_db(self, lateral_offset_m: float,
                       incidence_angle_rad: float) -> float:
        """Excess loss beyond the aligned (peak) operating point."""
        lat = lateral_offset_m / self.lateral_width_m
        ang = incidence_angle_rad / self.angular_width_rad
        return EXCESS_DB_AT_WIDTH * (lat * lat + ang * ang)

    def received_power_dbm(self, lateral_offset_m: float,
                           incidence_angle_rad: float) -> float:
        """Received power for a given misalignment state."""
        power = self.peak_power_dbm - self.excess_loss_db(
            abs(lateral_offset_m), abs(incidence_angle_rad))
        return max(power, MIN_POWER_DBM)

    # -- tolerance queries (Section 5.1's evaluation metrics) --------------

    def margin_db(self, sensitivity_dbm: float) -> float:
        """Power margin between aligned operation and receiver sensitivity."""
        return self.peak_power_dbm - sensitivity_dbm

    def angular_tolerance_rad(self, sensitivity_dbm: float) -> float:
        """Largest pure angular misalignment keeping the link connected."""
        margin = self.margin_db(sensitivity_dbm)
        if margin <= 0:
            return 0.0
        return self.angular_width_rad * math.sqrt(margin / EXCESS_DB_AT_WIDTH)

    def lateral_tolerance_m(self, sensitivity_dbm: float) -> float:
        """Largest pure lateral misalignment keeping the link connected."""
        margin = self.margin_db(sensitivity_dbm)
        if margin <= 0:
            return 0.0
        return self.lateral_width_m * math.sqrt(margin / EXCESS_DB_AT_WIDTH)

    def is_connected(self, lateral_offset_m: float,
                     incidence_angle_rad: float,
                     sensitivity_dbm: float) -> bool:
        """True when received power clears the receiver sensitivity."""
        power = self.received_power_dbm(lateral_offset_m,
                                        incidence_angle_rad)
        return power >= sensitivity_dbm
