"""Optical amplifier (EDFA) model.

The prototype inserts an erbium-doped fiber amplifier after the TX SFP
"to compensate for the coupling losses due to using a fiber rather than
an exposed photodetector" (Section 5.1).  We model small-signal gain
with a saturation output power, which is how EDFAs are specified.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Amplifier:
    """A fixed-gain optical amplifier with output saturation."""

    gain_db: float
    saturation_output_dbm: float = 23.0  # typical booster EDFA

    def __post_init__(self) -> None:
        if self.gain_db < 0:
            raise ValueError("amplifier gain cannot be negative")

    def amplify_dbm(self, input_dbm: float) -> float:
        """Output power for a given input power.

        Below saturation the amplifier applies its small-signal gain;
        above it the output clamps at the saturation power.
        """
        return min(input_dbm + self.gain_db, self.saturation_output_dbm)
