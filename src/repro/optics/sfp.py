"""SFP transceiver catalogue.

The prototypes use commodity small-form-factor pluggable transceivers:
SFP-10G-ZR (1550 nm, 0..4 dBm TX, -25 dBm sensitivity) for the 10G link
and SFP28 LR for the 25G link (12-18 dB link budget; the longer-reach
SFP28 ER could not be used because no compatible NIC exists).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants


@dataclass(frozen=True)
class Sfp:
    """An SFP transceiver: the electrical/optical endpoints of the link."""

    name: str
    tx_power_dbm: float
    rx_sensitivity_dbm: float
    wavelength_nm: float
    line_rate_gbps: float
    optimal_throughput_gbps: float
    relock_delay_s: float = constants.SFP_RELOCK_DELAY_S

    def __post_init__(self) -> None:
        if self.line_rate_gbps <= 0:
            raise ValueError("line rate must be positive")
        if self.optimal_throughput_gbps > self.line_rate_gbps:
            raise ValueError("goodput cannot exceed the line rate")
        if self.relock_delay_s < 0:
            raise ValueError("re-lock delay cannot be negative")

    @property
    def link_budget_db(self) -> float:
        """TX power minus sensitivity: the dB loss the link can absorb."""
        return self.tx_power_dbm - self.rx_sensitivity_dbm

    def signal_detected(self, received_dbm: float) -> bool:
        """True when the received power clears the sensitivity floor."""
        return received_dbm >= self.rx_sensitivity_dbm


SFP_10G_ZR = Sfp(
    name="SFP-10G-ZR",
    tx_power_dbm=constants.SFP_10G_TX_POWER_DBM,
    rx_sensitivity_dbm=constants.SFP_10G_RX_SENSITIVITY_DBM,
    wavelength_nm=constants.SFP_10G_WAVELENGTH_NM,
    line_rate_gbps=10.3125,
    optimal_throughput_gbps=constants.SFP_10G_OPTIMAL_THROUGHPUT_GBPS,
)

SFP28_LR = Sfp(
    name="SFP28-LR",
    tx_power_dbm=constants.SFP_25G_TX_POWER_DBM,
    rx_sensitivity_dbm=constants.SFP_25G_RX_SENSITIVITY_DBM,
    wavelength_nm=constants.SFP_25G_WAVELENGTH_NM,
    line_rate_gbps=25.78125,
    optimal_throughput_gbps=constants.SFP_25G_OPTIMAL_THROUGHPUT_GBPS,
)
