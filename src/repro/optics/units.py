"""Optical power unit conversions and dB arithmetic.

All link-budget math in the paper is in dBm/dB; all physical coupling
math is linear.  These helpers keep the two domains honest.
"""

from __future__ import annotations

import math

#: Floor used when converting a non-positive linear power to dBm.
MIN_POWER_DBM = -200.0

#: Floor used when converting a non-positive linear *ratio* to dB.
#: Same magnitude as :data:`MIN_POWER_DBM` but a different quantity:
#: a dimensionless gain/loss, not an absolute power level.
MIN_RATIO_DB = -200.0


def dbm_to_mw(dbm: float) -> float:
    """Convert power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert power in milliwatts to dBm.

    Zero or negative power maps to :data:`MIN_POWER_DBM` rather than
    raising -- a fully blocked beam is "no light", not an error.
    """
    if mw <= 0.0:
        return MIN_POWER_DBM
    return 10.0 * math.log10(mw)


def db_to_linear(db: float) -> float:
    """Convert a gain/loss in dB to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Zero or negative ratios map to :data:`MIN_RATIO_DB` rather than
    raising -- total extinction is "infinite loss", not an error.
    """
    if ratio <= 0.0:
        return MIN_RATIO_DB
    return 10.0 * math.log10(ratio)


def apply_gain_dbm(power_dbm: float, gain_db: float) -> float:
    """Apply a dB gain (negative = loss) to a dBm power level."""
    return power_dbm + gain_db
