"""Quad-photodiode power monitor.

The exhaustive alignment search (Section 4.2, footnote 9) monitors
received power by surrounding the RX collimator with four photodiodes
connected to a DAQ.  The search only needs a scalar "brighter or dimmer"
signal plus, optionally, a directional hint from the four quadrants.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Optional

import numpy as np
import numpy.typing as npt

from .units import dbm_to_mw


@dataclass(frozen=True)
class QuadPhotodiode:
    """Four photodiodes at N/E/S/W of the collimator aperture.

    ``ring_radius_m`` is the distance of each diode from the lens
    center; ``noise_mw`` is additive measurement noise per diode.
    """

    ring_radius_m: float = 12e-3
    responsivity: float = 1.0
    noise_mw: float = 1e-7

    def read(self, beam_power_dbm: float, beam_offset_m: npt.ArrayLike,
             beam_diameter_m: float,
             rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Per-quadrant photocurrents for a beam landing near the lens.

        ``beam_offset_m`` is the beam center's (x, y) offset from the
        lens center in the lens plane.  Each diode sees the local
        Gaussian intensity of the spot; the readings are what the
        alignment search's directional hints are computed from.

        Measurement noise requires an explicit generator: with
        ``noise_mw > 0`` and no ``rng``, this raises rather than
        silently drawing from OS entropy (the repo's determinism
        contract).  Noise-free monitors (``noise_mw=0``) need no rng.
        """
        if self.noise_mw > 0.0 and rng is None:
            raise ValueError(
                "QuadPhotodiode.read needs rng=np.random.Generator when "
                "noise_mw > 0; pass one or construct with noise_mw=0")
        offset = np.asarray(beam_offset_m, dtype=float)
        if offset.shape != (2,):
            raise ValueError("beam offset must be a 2-vector in lens plane")
        total_mw = dbm_to_mw(beam_power_dbm)
        positions = self.ring_radius_m * np.array(
            [[0.0, 1.0], [1.0, 0.0], [0.0, -1.0], [-1.0, 0.0]])
        w = beam_diameter_m / 2.0  # 1/e^2 radius
        readings = np.empty(4)
        for i, pos in enumerate(positions):
            r2 = float(np.sum((pos - offset) ** 2))
            intensity = math.exp(-2.0 * r2 / (w * w))
            readings[i] = self.responsivity * total_mw * intensity
            if self.noise_mw > 0.0 and rng is not None:
                readings[i] += rng.normal(0.0, self.noise_mw)
        return np.maximum(readings, 0.0)

    def centroid_hint(self, readings: np.ndarray) -> np.ndarray:
        """Rough direction toward the beam center from quadrant readings.

        Returns an (x, y) vector in the lens plane; (0, 0) means
        balanced.  Only usable as a coarse hint, exactly as in the
        prototype.
        """
        r = np.asarray(readings, dtype=float)
        if r.shape != (4,):
            raise ValueError("expected four quadrant readings")
        total = float(np.sum(r))
        if total <= 0.0:
            return np.zeros(2)
        north, east, south, west = r
        return np.array([east - west, north - south]) / total
