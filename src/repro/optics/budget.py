"""End-to-end link-budget accounting.

A link budget is an ordered list of named gains/losses applied to the
transmitter power.  Keeping it explicit makes the bench output readable
("where did my 30 dB go?") and lets tests assert each stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class LinkBudget:
    """Accumulates named dB stages on top of a TX power."""

    tx_power_dbm: float
    stages: List[Tuple[str, float]] = field(default_factory=list)

    def add(self, name: str, gain_db: float) -> "LinkBudget":
        """Append a stage; negative ``gain_db`` is a loss."""
        if not name:
            raise ValueError("budget stages need a name")
        self.stages.append((name, float(gain_db)))
        return self

    @property
    def received_power_dbm(self) -> float:
        """TX power plus every stage."""
        return self.tx_power_dbm + sum(g for _, g in self.stages)

    def margin_db(self, sensitivity_dbm: float) -> float:
        """Headroom above the receiver sensitivity."""
        return self.received_power_dbm - sensitivity_dbm

    def closes(self, sensitivity_dbm: float) -> bool:
        """True when the budget closes (link would be up)."""
        return self.margin_db(sensitivity_dbm) >= 0.0

    def breakdown(self) -> str:
        """Human-readable multi-line budget table."""
        lines = [f"{'TX power':24s} {self.tx_power_dbm:+8.2f} dBm"]
        running = self.tx_power_dbm
        for name, gain in self.stages:
            running += gain
            lines.append(f"{name:24s} {gain:+8.2f} dB  -> {running:+.2f} dBm")
        return "\n".join(lines)
