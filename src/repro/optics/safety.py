"""Eye-safety analysis (IEC 60825-1, the paper's reference [19]).

The paper argues its prototypes are eye-safe because (i) the SFPs are
Class 1 devices, (ii) 1550 nm light is absorbed before the retina, and
(iii) "using an amplifier retains eye safety, especially in light of
our choice of diverging beam and coupling losses" (footnote 12).  This
module makes that argument checkable: how much amplified power can
actually enter a pupil, and from what distance onward the diverging
beam is Class 1.

The accessible-emission limits below are simplified CW approximations
of IEC 60825-1 for the two SFP wavelengths; they are for simulation
and design exploration, not compliance certification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .gaussian import GaussianBeam

if TYPE_CHECKING:
    from ..link.design import LinkDesign
from .units import dbm_to_mw

#: Diameter of a dark-adapted human pupil (the measurement aperture).
PUPIL_DIAMETER_M = 7e-3

#: Approximate Class 1 CW accessible-emission limits, in milliwatts.
#: Beyond 1400 nm the cornea/lens absorb before the retina, so the
#: limit is ~10 mW; in the 1250-1400 nm band it is a few milliwatts.
CLASS1_LIMIT_MW = {
    "retinal-hazard band (<1250 nm)": 0.78,
    "1250-1400 nm": 3.0,
    ">1400 nm (retina-safe)": 10.0,
}


def class1_limit_mw(wavelength_nm: float) -> float:
    """Class 1 limit applicable to a wavelength (approximate)."""
    if wavelength_nm <= 0:
        raise ValueError("wavelength must be positive")
    if wavelength_nm < 1250.0:
        return CLASS1_LIMIT_MW["retinal-hazard band (<1250 nm)"]
    if wavelength_nm <= 1400.0:
        return CLASS1_LIMIT_MW["1250-1400 nm"]
    return CLASS1_LIMIT_MW[">1400 nm (retina-safe)"]


def power_through_pupil_mw(beam: GaussianBeam, launched_power_dbm: float,
                           distance_m: float,
                           pupil_diameter_m: float = PUPIL_DIAMETER_M
                           ) -> float:
    """Worst-case power entering a centered pupil at a distance."""
    if distance_m < 0:
        raise ValueError("distance cannot be negative")
    total_mw = dbm_to_mw(launched_power_dbm)
    fraction = beam.intensity_fraction_within(pupil_diameter_m,
                                              distance_m)
    return total_mw * fraction


def is_class1_at(beam: GaussianBeam, launched_power_dbm: float,
                 distance_m: float) -> bool:
    """Class 1 verdict for an eye at ``distance_m`` from the launch."""
    limit = class1_limit_mw(beam.wavelength_m * 1e9)
    return power_through_pupil_mw(
        beam, launched_power_dbm, distance_m) <= limit


def hazard_distance_m(beam: GaussianBeam, launched_power_dbm: float,
                      max_distance_m: float = 100.0) -> float:
    """Nominal ocular hazard distance: Class 1 from here onward.

    Returns 0 when the launch is safe even at the aperture, and
    ``inf`` when it is still above the limit at ``max_distance_m``
    (practically: a collimated over-limit beam).
    """
    if is_class1_at(beam, launched_power_dbm, 0.0):
        return 0.0
    if not is_class1_at(beam, launched_power_dbm, max_distance_m):
        return math.inf
    lo, hi = 0.0, max_distance_m
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if is_class1_at(beam, launched_power_dbm, mid):
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class SafetyReport:
    """Eye-safety summary of one link design."""

    design_name: str
    wavelength_nm: float
    launched_power_dbm: float
    class1_limit_mw: float
    worst_pupil_power_at_link_range_mw: float
    hazard_distance_m: float

    @property
    def safe_at_link_range(self) -> bool:
        return (self.worst_pupil_power_at_link_range_mw
                <= self.class1_limit_mw)


#: Portion of the link's fixed insertion/mode loss incurred *before*
#: the launch aperture (fiber splices, the amplifier-to-collimator
#: path, the collimator itself).  Light lost there never becomes
#: accessible emission -- this is the "coupling losses" part of the
#: paper's footnote-12 safety argument.
TX_SIDE_INSERTION_LOSS_DB = 7.0


def assess_design(design: "LinkDesign",
                  tx_insertion_loss_db: float = TX_SIDE_INSERTION_LOSS_DB
                  ) -> SafetyReport:
    """Safety report for a :class:`repro.link.LinkDesign`.

    The launched (accessible) power is the amplifier output minus the
    TX-side share of the insertion loss.
    """
    launched = (design.amplifier.amplify_dbm(design.sfp.tx_power_dbm)
                - tx_insertion_loss_db)
    wavelength_nm = design.beam.wavelength_m * 1e9
    return SafetyReport(
        design_name=design.name,
        wavelength_nm=wavelength_nm,
        launched_power_dbm=launched,
        class1_limit_mw=class1_limit_mw(wavelength_nm),
        worst_pupil_power_at_link_range_mw=power_through_pupil_mw(
            design.beam, launched, design.design_range_m),
        hazard_distance_m=hazard_distance_m(design.beam, launched),
    )
