"""Deterministic fault injection for the closed-loop link.

Seeded fault models (:mod:`~repro.faults.models`), the injection
wrappers the session loop drives them through
(:mod:`~repro.faults.inject`), and the structured event log + derived
robustness metrics (:mod:`~repro.faults.events`).  Compute-layer
chaos — SIGKILLed workers, torn checkpoint files — lives in
:mod:`~repro.faults.process`.  The chaos sweep
harness lives in :mod:`repro.faults.chaos`, imported directly (not
re-exported here) because it depends on :mod:`repro.simulate`, which
in turn depends on this package.
"""

from .events import (
    EventLog,
    FaultMetrics,
    SessionEvent,
    derive_metrics,
    down_spells,
)
from .inject import FaultInjector, NullInjector
from .process import (
    ProcessChaos,
    SimulatedCrash,
    kill_plan,
    mangle_json,
    tear_file,
)
from .models import (
    AttenuationRamp,
    ChannelBlockage,
    CommandJitter,
    CommandLoss,
    GalvoSaturation,
    StuckMirror,
    TrackerDrift,
    TrackerDropout,
    TrackerFreeze,
    TrackerOutlierBurst,
    poisson_windows,
)

__all__ = [
    "AttenuationRamp",
    "ChannelBlockage",
    "CommandJitter",
    "CommandLoss",
    "EventLog",
    "FaultInjector",
    "FaultMetrics",
    "GalvoSaturation",
    "NullInjector",
    "ProcessChaos",
    "SessionEvent",
    "SimulatedCrash",
    "StuckMirror",
    "TrackerDrift",
    "TrackerDropout",
    "TrackerFreeze",
    "TrackerOutlierBurst",
    "derive_metrics",
    "down_spells",
    "kill_plan",
    "mangle_json",
    "poisson_windows",
    "tear_file",
]
