"""Structured session events: every fault and every recovery action.

The chaos harness cares about *accountability*: after a faulted run it
must be possible to say exactly what was injected, what the supervisor
did about it, and what it cost.  :class:`EventLog` is the ordered,
append-only record both sides write into; :func:`derive_metrics`
reduces a finished run to MTTR / availability-under-faults numbers.

Determinism matters here: event ``detail`` strings are rendered with
fixed precision (:func:`fmt`) so a rerun with the same seed produces a
byte-identical log, which the smoke tests and the ``chaos`` sweep
assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

#: Event sources.
FAULT = "fault"
RECOVERY = "recovery"

#: Fault/recovery categories.
TRACKER = "tracker"
CHANNEL = "channel"
ACTUATOR = "actuator"
SUPERVISOR = "supervisor"


def fmt(value: float) -> str:
    """Canonical fixed-precision rendering for event details."""
    return f"{float(value):.6f}"


@dataclass(frozen=True)
class SessionEvent:
    """One timestamped thing that happened during a session."""

    t_s: float
    source: str      # FAULT or RECOVERY
    category: str    # TRACKER / CHANNEL / ACTUATOR / SUPERVISOR
    kind: str        # e.g. "dropout", "blockage", "retry", "remap"
    detail: str = ""

    def line(self) -> str:
        """Canonical one-line rendering (stable across runs)."""
        base = (f"{self.t_s:012.6f} {self.source} "
                f"{self.category} {self.kind}")
        return f"{base} {self.detail}" if self.detail else base


class EventLog:
    """Ordered, append-only event record shared by injector+supervisor."""

    def __init__(self):
        self._events: List[SessionEvent] = []

    def record(self, t_s: float, source: str, category: str, kind: str,
               detail: str = "") -> SessionEvent:
        event = SessionEvent(t_s=float(t_s), source=source,
                             category=category, kind=kind, detail=detail)
        self._events.append(event)
        return event

    def fault(self, t_s: float, category: str, kind: str,
              detail: str = "") -> SessionEvent:
        return self.record(t_s, FAULT, category, kind, detail)

    def recovery(self, t_s: float, kind: str,
                 detail: str = "") -> SessionEvent:
        return self.record(t_s, RECOVERY, SUPERVISOR, kind, detail)

    @property
    def events(self) -> tuple:
        return tuple(self._events)

    def lines(self) -> List[str]:
        return [event.line() for event in self._events]

    def text(self) -> str:
        """The whole log as one canonical string (byte-comparable)."""
        return "\n".join(self.lines())

    def count(self, source: str = None, kind: str = None) -> int:
        return sum(1 for e in self._events
                   if (source is None or e.source == source)
                   and (kind is None or e.kind == kind))


@dataclass(frozen=True)
class FaultMetrics:
    """Derived robustness numbers for one finished session."""

    availability: float        # uptime fraction over the whole run
    outages: int               # contiguous down-spells
    mttr_s: float              # mean down-spell length (0 if none)
    longest_outage_s: float
    faults_injected: int
    recovery_actions: int

    def as_dict(self) -> dict:
        """JSON-ready representation (insertion-ordered, canonical)."""
        return {
            "availability": self.availability,
            "outages": self.outages,
            "mttr_s": self.mttr_s,
            "longest_outage_s": self.longest_outage_s,
            "faults_injected": self.faults_injected,
            "recovery_actions": self.recovery_actions,
        }


def down_spells(link_up: Sequence[bool], dt_s: float) -> List[float]:
    """Lengths (seconds) of contiguous link-down runs."""
    up = np.asarray(link_up, dtype=bool)
    if up.size == 0:
        return []
    down = ~up
    edges = np.flatnonzero(np.diff(down.astype(int)))
    bounds = np.concatenate([[0], edges + 1, [down.size]])
    spells = []
    for start, end in zip(bounds[:-1], bounds[1:]):
        if down[start]:
            spells.append((end - start) * dt_s)
    return spells


def derive_metrics(link_up: Sequence[bool], dt_s: float,
                   events: Iterable[SessionEvent]) -> FaultMetrics:
    """Reduce a run's link trace + event log to robustness metrics."""
    events = list(events)
    spells = down_spells(link_up, dt_s)
    up = np.asarray(link_up, dtype=bool)
    availability = float(np.mean(up)) if up.size else 0.0
    return FaultMetrics(
        availability=availability,
        outages=len(spells),
        mttr_s=float(np.mean(spells)) if spells else 0.0,
        longest_outage_s=float(np.max(spells)) if spells else 0.0,
        faults_injected=sum(1 for e in events if e.source == FAULT),
        recovery_actions=sum(1 for e in events if e.source == RECOVERY),
    )
