"""Fault injection wrappers: where the fault models meet the loop.

:class:`FaultInjector` sits between :class:`PrototypeSession` and the
three physical interfaces it drives -- ``VrhTracker.report``,
``Testbed.apply_command`` and ``FsoChannel.evaluate`` -- and perturbs
each call according to the armed fault models.  The core simulator
classes are never modified; an un-faulted injector is a pure
passthrough, so the session has a single code path.

All schedule randomness is drawn from one generator seeded at
construction, and every injection is recorded in the shared
:class:`~repro.faults.events.EventLog`, which is what makes a faulted
run byte-reproducible per ``(faults, seed)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import PointingCommand
from ..determinism import resolve_rng
from ..geometry import RigidTransform
from ..link.channel import AlignmentState
from ..link.design import NOISE_FLOOR_DBM
from ..vrh import Pose
from . import models
from .events import ACTUATOR, CHANNEL, TRACKER, EventLog, fmt


class _WindowTimeline:
    """Precomputed (start, end) windows with lazy entry logging."""

    def __init__(self, fault, windows: List[Tuple[float, float]],
                 log: EventLog):
        self.fault = fault
        self.windows = windows
        self._log = log
        self._logged = [False] * len(windows)

    def active(self, t_s: float) -> Optional[int]:
        """Index of the active window at ``t_s`` (logged on entry)."""
        for i, (start, end) in enumerate(self.windows):
            if start <= t_s < end:
                if not self._logged[i]:
                    self._logged[i] = True
                    self._log.fault(
                        t_s, self.fault.category, self.fault.kind,
                        f"window={fmt(start)}..{fmt(end)}")
                return i
        return None


class FaultInjector:
    """Applies a set of fault models to one session run."""

    def __init__(self, faults: Sequence, duration_s: float,
                 seed: int = 0, log: Optional[EventLog] = None):
        self.log = log if log is not None else EventLog()
        self.duration_s = float(duration_s)
        rng = resolve_rng(seed=seed, owner="FaultInjector")
        self._rng = rng

        self._dropouts: List[_WindowTimeline] = []
        self._freezes: List[_WindowTimeline] = []
        self._outliers: List[Tuple[_WindowTimeline, List[np.ndarray]]] = []
        self._blockages: List[_WindowTimeline] = []
        self._drifts: List[models.TrackerDrift] = []
        self._ramps: List[models.AttenuationRamp] = []
        self._saturations: List[models.GalvoSaturation] = []
        self._stuck: List[models.StuckMirror] = []
        self._losses: List[models.CommandLoss] = []
        self._jitters: List[models.CommandJitter] = []

        # Fixed arming order => fixed RNG consumption => reproducible
        # schedules for a given (faults, seed) pair.
        for fault in faults:
            self._arm(fault, duration_s, rng)

        self._last_report: Optional[Pose] = None
        self._ramp_logged = [False] * len(self._ramps)
        self._stuck_logged = [False] * len(self._stuck)
        self._saturating = False

    # -- arming --------------------------------------------------------------

    def _arm(self, fault, duration_s: float, rng) -> None:
        if isinstance(fault, models.WINDOWED_FAULTS):
            windows = fault.windows(duration_s, rng)
            timeline = _WindowTimeline(fault, windows, self.log)
            if isinstance(fault, models.TrackerDropout):
                self._dropouts.append(timeline)
            elif isinstance(fault, models.TrackerFreeze):
                self._freezes.append(timeline)
            elif isinstance(fault, models.TrackerOutlierBurst):
                directions = []
                for _ in windows:
                    axis = rng.normal(size=3)
                    directions.append(axis / np.linalg.norm(axis))
                self._outliers.append((timeline, directions))
            else:
                self._blockages.append(timeline)
            detail = f"windows={len(windows)}"
        elif isinstance(fault, models.TrackerDrift):
            self._drifts.append(fault)
            detail = (f"onset={fmt(fault.onset_s)} "
                      f"rate={fmt(fault.rate_m_per_s)} "
                      f"max={fmt(fault.max_m)}")
        elif isinstance(fault, models.AttenuationRamp):
            self._ramps.append(fault)
            detail = (f"start={fmt(fault.start_s)} "
                      f"ramp={fmt(fault.ramp_db_per_s)} "
                      f"max={fmt(fault.max_db)}")
        elif isinstance(fault, models.GalvoSaturation):
            self._saturations.append(fault)
            detail = f"limit={fmt(fault.limit_v)}"
        elif isinstance(fault, models.StuckMirror):
            self._stuck.append(fault)
            detail = (f"{fault.side}{fault.axis} "
                      f"window={fmt(fault.start_s)}..{fmt(fault.end_s)}")
        elif isinstance(fault, models.CommandLoss):
            self._losses.append(fault)
            detail = f"p={fmt(fault.probability)}"
        elif isinstance(fault, models.CommandJitter):
            self._jitters.append(fault)
            detail = f"max={fmt(fault.max_extra_s)}"
        else:
            raise TypeError(f"unknown fault model: {fault!r}")
        self.log.fault(0.0, fault.category, f"arm-{fault.kind}", detail)

    # -- tracker side --------------------------------------------------------

    def _drift_transform(self, t_s: float) -> Optional[RigidTransform]:
        offset = np.zeros(3)
        for drift in self._drifts:
            offset = offset + drift.offset_at(t_s)
        if not np.any(offset):
            return None
        return RigidTransform(np.eye(3), offset)

    def tracker_report(self, t_s: float, tracker,
                       pose: Pose) -> Optional[Pose]:
        """One (possibly faulted) VRH-T report; None means "lost".

        Precedence when windows overlap: dropout beats freeze beats
        outlier; drift composes under everything.
        """
        if any(tl.active(t_s) is not None for tl in self._dropouts):
            return None
        if any(tl.active(t_s) is not None for tl in self._freezes):
            if self._last_report is not None:
                return self._last_report
        clean = tracker.true_report_transform(pose)
        for timeline, directions in self._outliers:
            index = timeline.active(t_s)
            if index is not None:
                glitch = RigidTransform(
                    np.eye(3), directions[index] * timeline.fault.offset_m)
                clean = glitch.compose(clean)
                break
        drift = self._drift_transform(t_s)
        if drift is not None:
            clean = drift.compose(clean)
        report = tracker.noisy_pose(clean)
        self._last_report = report
        return report

    def calibration_report(self, t_s: float, tracker, pose: Pose) -> Pose:
        """A report for re-training sample collection.

        Transient faults (dropout/freeze/outlier) do not apply -- the
        deployer retries until a valid sample lands -- but persistent
        drift does: it is exactly what the remap has to learn.
        """
        clean = tracker.true_report_transform(pose)
        drift = self._drift_transform(t_s)
        if drift is not None:
            clean = drift.compose(clean)
        return tracker.noisy_pose(clean)

    # -- actuator side -------------------------------------------------------

    def command_latency_extra_s(self, t_s: float) -> float:
        """Per-command control-channel jitter (consumes injector RNG)."""
        extra = 0.0
        for jitter in self._jitters:
            extra += float(self._rng.uniform(0.0, jitter.max_extra_s))
        return extra

    def apply_command(self, t_s: float, testbed,
                      command: PointingCommand) -> Optional[float]:
        """Steer through the faults; None when the command was lost.

        May raise :class:`repro.galvo.CoverageError` exactly like the
        raw ``Testbed.apply_command`` it wraps.
        """
        for loss in self._losses:
            if self._rng.random() < loss.probability:
                self.log.fault(t_s, ACTUATOR, "command-loss")
                return None
        voltages = [command.v_tx1, command.v_tx2,
                    command.v_rx1, command.v_rx2]
        for saturation in self._saturations:
            clamped = [saturation.clamp(v) for v in voltages]
            if clamped != voltages and not self._saturating:
                self._saturating = True
                self.log.fault(t_s, ACTUATOR, "saturation",
                               f"limit={fmt(saturation.limit_v)}")
            elif clamped == voltages:
                self._saturating = False
            voltages = clamped
        for i, stuck in enumerate(self._stuck):
            if not stuck.active_at(t_s):
                continue
            if not self._stuck_logged[i]:
                self._stuck_logged[i] = True
                self.log.fault(t_s, ACTUATOR, "stuck",
                               f"{stuck.side}{stuck.axis}")
            held = (testbed.tx_hardware.voltages if stuck.side == "tx"
                    else testbed.rx_hardware.voltages)
            offset = 0 if stuck.side == "tx" else 2
            voltages[offset + stuck.axis] = held[stuck.axis]
        patched = PointingCommand(v_tx1=voltages[0], v_tx2=voltages[1],
                                  v_rx1=voltages[2], v_rx2=voltages[3],
                                  iterations=command.iterations)
        return testbed.apply_command(patched)

    # -- channel side --------------------------------------------------------

    def blockage_active(self, t_s: float) -> bool:
        """Whether any armed blockage window covers ``t_s``.

        Checking does not log: only :meth:`channel_sample` records the
        window, when the blockage actually darkens a sample.
        """
        return any(start <= t_s < end
                   for tl in self._blockages
                   for start, end in tl.windows)

    def channel_sample(self, t_s: float, channel,
                       pose: Pose) -> AlignmentState:
        """One channel evaluation with blockage/attenuation applied."""
        sample = channel.evaluate(pose)
        power = sample.received_power_dbm
        for i, ramp in enumerate(self._ramps):
            loss = ramp.extra_loss_db(t_s)
            if loss > 0.0:
                if not self._ramp_logged[i]:
                    self._ramp_logged[i] = True
                    self.log.fault(t_s, CHANNEL, "attenuation",
                                   f"ramp={fmt(ramp.ramp_db_per_s)}")
                power -= loss
        if any(tl.active(t_s) is not None for tl in self._blockages):
            power = NOISE_FLOOR_DBM
        power = max(power, NOISE_FLOOR_DBM)
        if power == sample.received_power_dbm:
            return sample
        return AlignmentState(
            received_power_dbm=power,
            axis_offset_m=sample.axis_offset_m,
            incidence_angle_rad=sample.incidence_angle_rad,
            range_m=sample.range_m,
            connected=channel.design.sfp.signal_detected(power),
        )


class NullInjector:
    """Passthrough injector: the un-faulted single code path."""

    def __init__(self, log: Optional[EventLog] = None):
        self.log = log if log is not None else EventLog()

    def tracker_report(self, t_s: float, tracker, pose):
        return tracker.report(pose)

    def calibration_report(self, t_s: float, tracker, pose):
        return tracker.report(pose)

    def command_latency_extra_s(self, t_s: float) -> float:
        return 0.0

    def apply_command(self, t_s: float, testbed, command):
        return testbed.apply_command(command)

    def blockage_active(self, t_s: float) -> bool:
        return False

    def channel_sample(self, t_s: float, channel, pose):
        return channel.evaluate(pose)
