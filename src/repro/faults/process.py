"""Process- and file-level chaos for the sweep orchestrator.

:mod:`repro.faults.models` perturbs the *simulated link*; this module
perturbs the *compute layer that runs it*: SIGKILLed workers, a parent
that dies between publishing a unit's rows and journaling them, torn
checkpoint files.  Everything is explicit or :func:`repro.determinism.
derive`-seeded, so a chaos test that fails replays exactly.

:class:`ProcessChaos` plugs into ``SweepRunner(chaos=...)`` via three
duck-typed hooks:

* ``on_launch(unit_index, attempt, process)`` — right after a worker
  starts; killing the process here simulates an OOM-killed or crashed
  worker mid-unit.
* ``on_publish(unit_index)`` — after a unit's group landed but
  *before* its journal record; raising here tears open the publish →
  journal window, the exact gap the resume contract must absorb.
* ``on_unit_complete(completed)`` — after the journal append; raising
  here is a parent crash at a checkpoint boundary.

:func:`tear_file` and :func:`mangle_json` corrupt checkpoint artifacts
the way a power cut does — a truncated tail, a scribbled span — for
the journal-repair and store-corruption tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from ..determinism import derive


class SimulatedCrash(RuntimeError):
    """An injected parent-process crash (chaos tests only)."""

    def __init__(self, where: str, count: int) -> None:
        super().__init__(f"simulated crash {where} (count {count})")
        self.where = where
        self.count = count


@dataclass
class ProcessChaos:
    """A deterministic schedule of compute-layer faults.

    ``kill_units`` maps unit index to how many of that unit's worker
    attempts to SIGKILL (the runner then retries and, past the retry
    budget, escalates to serial).  ``crash_on_publish_of`` raises a
    :class:`SimulatedCrash` in the publish→journal window of that unit
    index; ``crash_after_units`` raises once that many units are
    journaled.  All counters reset with a fresh instance, so one
    instance describes one run.
    """

    kill_units: Mapping[int, int] = field(default_factory=dict)
    crash_on_publish_of: Optional[int] = None
    crash_after_units: Optional[int] = None
    kills_delivered: Dict[int, int] = field(default_factory=dict)

    def on_launch(self, unit_index: int, attempt: int,
                  process: object) -> None:
        budget = int(self.kill_units.get(unit_index, 0))
        delivered = self.kills_delivered.get(unit_index, 0)
        if delivered < budget:
            self.kills_delivered[unit_index] = delivered + 1
            kill = getattr(process, "kill")
            kill()

    def on_publish(self, unit_index: int) -> None:
        if self.crash_on_publish_of is not None \
                and unit_index == self.crash_on_publish_of:
            raise SimulatedCrash("between publish and journal",
                                 unit_index)

    def on_unit_complete(self, completed: int) -> None:
        if self.crash_after_units is not None \
                and completed >= self.crash_after_units:
            raise SimulatedCrash("after checkpoint boundary", completed)


def kill_plan(seed: int, n_units: int, kills: int) -> Dict[int, int]:
    """A derive-seeded choice of ``kills`` distinct units to shoot once.

    Reproducible across runs (same seed, same plan) so a failing chaos
    test names the exact schedule that broke it.
    """
    if kills > n_units:
        raise ValueError(f"cannot kill {kills} of {n_units} units")
    rng = derive(seed, n_units, kills)
    chosen = rng.choice(n_units, size=kills, replace=False)
    return {int(index): 1 for index in sorted(chosen)}


def tear_file(path: Union[str, Path], drop_bytes: int) -> int:
    """Truncate the last ``drop_bytes`` bytes off a file (>= 0 left).

    Returns the new size.  Models a crash mid-append: the tail of the
    final record is simply missing.
    """
    path = Path(path)
    size = path.stat().st_size
    new_size = max(0, size - int(drop_bytes))
    with open(path, "rb+") as handle:
        handle.truncate(new_size)
        handle.flush()
        os.fsync(handle.fileno())
    return new_size


def mangle_json(path: Union[str, Path]) -> None:
    """Scribble over the middle of a JSON file (keeps its length).

    The result is valid UTF-8 but not valid JSON — the classic
    half-written-page corruption a reader must reject loudly.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to mangle")
    middle = len(data) // 2
    span = data[middle:middle + 8]
    data[middle:middle + len(span)] = b"~" * len(span)
    path.write_bytes(bytes(data))
