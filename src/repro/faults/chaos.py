"""Chaos sweep harness: fault scenarios × supervised/bare arms.

Each :class:`ChaosScenario` names a reproducible experiment: a seeded
testbed, a motion profile, a set of armed fault models and a
supervisor policy.  :func:`run_scenario` runs it twice -- once with the
supervisor, once bare -- on *freshly built* testbeds with the same
seed, so both arms see byte-identical fault schedules and tracker
noise streams and the uptime delta is attributable to the recovery
ladder alone.

Like the handover study (which isolates *coverage*), the chaos sweep
isolates *robustness*: sessions run against the oracle-parameter
system so learning error does not confound the fault response.

:func:`run_chaos` fans scenarios out over
:func:`repro.parallel.parallel_map`; every quantity in the output
derives from the simulation (never the wall clock), so the resulting
``BENCH_chaos.json`` is byte-identical for any ``workers=`` setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..parallel import parallel_map
from . import models


@dataclass(frozen=True)
class ChaosScenario:
    """One named, fully reproducible fault experiment."""

    name: str
    description: str
    faults: Tuple = ()
    duration_s: float = 10.0
    seed: int = 11            # testbed seed (both arms)
    fault_seed: int = 3       # fault schedule seed (both arms)
    profile: str = "static"   # "static" or "stroke:<m_per_s>"
    supervisor_kwargs: Optional[dict] = None


def _build_profile(scenario: ChaosScenario, testbed):
    from ..motion import LinearRail, StaticProfile
    if scenario.profile == "static":
        return StaticProfile(testbed.home_pose,
                             duration_s=scenario.duration_s)
    if scenario.profile.startswith("stroke:"):
        speed = float(scenario.profile.split(":", 1)[1])
        rail = LinearRail(axis=[1, 0, 0], length_m=0.15)
        return rail.stroke_profile(testbed.home_pose, [speed])
    raise ValueError(f"unknown profile spec {scenario.profile!r}")


def _run_arm(scenario: ChaosScenario, supervised: bool):
    """One arm on a fresh testbed (same seed => same fault timeline)."""
    from ..simulate import PrototypeSession, Supervisor, Testbed
    testbed = Testbed(seed=scenario.seed)
    session = PrototypeSession(testbed, testbed.oracle_system())
    profile = _build_profile(scenario, testbed)
    supervisor = (Supervisor(**(scenario.supervisor_kwargs or {}))
                  if supervised else None)
    return session.run(profile, duration_s=scenario.duration_s,
                       faults=list(scenario.faults),
                       fault_seed=scenario.fault_seed,
                       supervisor=supervisor)


def run_scenario(scenario: ChaosScenario) -> dict:
    """Run both arms of one scenario; returns a JSON-ready record.

    Module-level and pure so :func:`repro.parallel.parallel_map` can
    ship it across processes; everything in the record derives from
    the simulation, never the wall clock.
    """
    supervised = _run_arm(scenario, supervised=True)
    bare = _run_arm(scenario, supervised=False)
    return {
        "name": scenario.name,
        "description": scenario.description,
        "duration_s": scenario.duration_s,
        "seed": scenario.seed,
        "fault_seed": scenario.fault_seed,
        "profile": scenario.profile,
        "supervised": supervised.fault_metrics().as_dict(),
        "unsupervised": bare.fault_metrics().as_dict(),
        "uptime_gain": (supervised.uptime_fraction
                        - bare.uptime_fraction),
        "coverage_failures": supervised.coverage_failures,
        "pointing_failures": supervised.pointing_failures,
        "events": supervised.event_lines(),
        "events_unsupervised": bare.event_lines(),
    }


def run_chaos(scenarios: Sequence[ChaosScenario],
              workers: Optional[int] = None,
              store=None, group: str = "chaos") -> List[dict]:
    """Run a scenario sweep, optionally across processes.

    Results come back in scenario order regardless of ``workers``, so
    the serialized sweep is byte-identical for any worker count.

    Passing ``store=`` (a :class:`repro.store.ColumnStore`) persists
    the numeric per-scenario outcomes as column group ``group`` (one
    row per scenario, scenario names and full records in the group
    attributes), so robustness trends are queryable across runs.
    """
    records = parallel_map(run_scenario, list(scenarios),
                           workers=workers)
    if store is not None and records:
        store.write_group(group, {
            "availability_supervised": np.array(
                [r["supervised"]["availability"] for r in records]),
            "availability_bare": np.array(
                [r["unsupervised"]["availability"] for r in records]),
            "uptime_gain": np.array(
                [r["uptime_gain"] for r in records]),
            "mttr_s": np.array(
                [r["supervised"]["mttr_s"] for r in records]),
            "recovery_actions": np.array(
                [r["supervised"]["recovery_actions"] for r in records]),
        }, attrs={
            "kind": "chaos-sweep",
            "scenarios": [r["name"] for r in records],
            "records": records,
        })
    return records


def sweep_payload(records: Sequence[dict]) -> dict:
    """The canonical ``BENCH_chaos.json`` payload for a finished sweep."""
    return {
        "pipeline": "chaos",
        "scenarios": list(records),
        "supervised_mean_availability": _mean(
            r["supervised"]["availability"] for r in records),
        "unsupervised_mean_availability": _mean(
            r["unsupervised"]["availability"] for r in records),
        "mean_uptime_gain": _mean(r["uptime_gain"] for r in records),
    }


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


#: The default registry, spanning all three fault families.
CHAOS_SCENARIOS: Tuple[ChaosScenario, ...] = (
    ChaosScenario(
        name="drift-remap",
        description="slow VRH-T drift; supervisor escalates to remap",
        faults=(models.TrackerDrift(onset_s=2.0, rate_m_per_s=0.01,
                                    max_m=0.02),),
        duration_s=14.0,
        supervisor_kwargs={"drift_baseline_samples": 30,
                           "drift_window": 15, "max_remaps": 3},
    ),
    ChaosScenario(
        name="blockage",
        description="LOS blockages + report dropouts; hold-off keeps aim",
        faults=(models.ChannelBlockage(rate_hz=0.2, mean_duration_s=0.4),
                models.TrackerDropout()),
        duration_s=10.0,
    ),
    ChaosScenario(
        name="tracker-chaos",
        description="dropouts, frozen poses and outlier bursts at once",
        faults=(models.TrackerDropout(rate_hz=0.5),
                models.TrackerFreeze(rate_hz=0.4),
                models.TrackerOutlierBurst(rate_hz=0.3, offset_m=0.3)),
        duration_s=10.0,
    ),
    ChaosScenario(
        name="actuator",
        description="lost + jittered commands and a stuck TX mirror",
        faults=(models.CommandLoss(probability=0.1),
                models.CommandJitter(max_extra_s=0.004),
                models.StuckMirror(start_s=3.0, end_s=4.0,
                                   side="tx", axis=0)),
        duration_s=10.0,
    ),
    ChaosScenario(
        name="attenuation",
        description="slow channel attenuation ramp (mist on the optics)",
        faults=(models.AttenuationRamp(start_s=2.0, ramp_db_per_s=1.5,
                                       max_db=12.0),),
        duration_s=8.0,
    ),
    ChaosScenario(
        name="kitchen-sink",
        description="drift + blockage + dropouts + command loss together",
        faults=(models.TrackerDrift(onset_s=3.0, rate_m_per_s=0.01,
                                    max_m=0.02),
                models.ChannelBlockage(rate_hz=0.15,
                                       mean_duration_s=0.3),
                models.TrackerDropout(),
                models.CommandLoss(probability=0.05)),
        duration_s=14.0,
        supervisor_kwargs={"drift_baseline_samples": 30,
                           "drift_window": 15, "max_remaps": 3},
    ),
)


def get_scenarios(names: Optional[Sequence[str]] = None
                  ) -> List[ChaosScenario]:
    """Look up scenarios by name (all of them when ``names`` is None)."""
    if not names:
        return list(CHAOS_SCENARIOS)
    registry = {s.name: s for s in CHAOS_SCENARIOS}
    missing = [n for n in names if n not in registry]
    if missing:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown chaos scenario(s) {missing}; "
                       f"available: {known}")
    return [registry[n] for n in names]
