"""Seeded, composable fault models for the closed-loop link.

Each fault is a small frozen dataclass describing *what* goes wrong;
the schedule of *when* is drawn once per run by the
:class:`~repro.faults.inject.FaultInjector` from an RNG seeded at
construction, so the same ``(faults, seed, duration)`` triple always
yields the same timeline.  Three families mirror the failure modes the
paper's §5.2-§5.3 machinery exists to survive:

* **tracker** -- VRH-T report dropouts, frozen-pose stalls, outlier
  bursts, and slow drift onset (the §4 remap trigger);
* **channel** -- LOS blockage windows (reusing the handover study's
  :class:`~repro.simulate.handover.OcclusionEvent`) and gradual extra
  attenuation (dust, mist, a smudged window);
* **actuator** -- galvo voltage saturation, a stuck mirror axis, and
  control-channel command loss / latency jitter.

Window-based faults expose ``windows(duration_s, rng)``; continuous
faults expose their own per-time evaluation.  Nothing here touches the
core models -- injection happens entirely in wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: Categories, shared with the event log.
TRACKER = "tracker"
CHANNEL = "channel"
ACTUATOR = "actuator"


def poisson_windows(rng: np.random.Generator, duration_s: float,
                    rate_hz: float, mean_duration_s: float,
                    min_duration_s: float = 1e-3
                    ) -> List[Tuple[float, float]]:
    """Random fault windows: Poisson arrivals, exponential durations.

    Windows are clipped to ``[0, duration_s]`` and never overlap -- a
    new arrival during an active window is discarded, matching how a
    physical cause (a person in the beam) cannot re-occur while it is
    still occurring.
    """
    if rate_hz < 0 or mean_duration_s <= 0:
        raise ValueError("rate must be >= 0 and mean duration positive")
    windows: List[Tuple[float, float]] = []
    t = 0.0
    last_end = 0.0
    while rate_hz > 0:
        t += float(rng.exponential(1.0 / rate_hz))
        if t >= duration_s:
            break
        length = max(float(rng.exponential(mean_duration_s)),
                     min_duration_s)
        if t < last_end:
            continue
        end = min(t + length, duration_s)
        windows.append((t, end))
        last_end = end
    return windows


@dataclass(frozen=True)
class TrackerDropout:
    """VRH-T reports silently stop arriving for short windows."""

    rate_hz: float = 0.4
    mean_duration_s: float = 0.08

    category = TRACKER
    kind = "dropout"

    def windows(self, duration_s: float, rng: np.random.Generator):
        return poisson_windows(rng, duration_s, self.rate_hz,
                               self.mean_duration_s)


@dataclass(frozen=True)
class TrackerFreeze:
    """The tracker keeps reporting, but the pose is stale (stalled)."""

    rate_hz: float = 0.3
    mean_duration_s: float = 0.12

    category = TRACKER
    kind = "freeze"

    def windows(self, duration_s: float, rng: np.random.Generator):
        return poisson_windows(rng, duration_s, self.rate_hz,
                               self.mean_duration_s)


@dataclass(frozen=True)
class TrackerOutlierBurst:
    """Short bursts of wildly wrong position reports.

    Each window gets one fixed offset direction (drawn from the
    injector RNG) of magnitude ``offset_m`` -- the signature of a
    re-localization glitch, not white noise.
    """

    rate_hz: float = 0.25
    mean_duration_s: float = 0.05
    offset_m: float = 0.3

    category = TRACKER
    kind = "outlier"

    def windows(self, duration_s: float, rng: np.random.Generator):
        return poisson_windows(rng, duration_s, self.rate_hz,
                               self.mean_duration_s)


@dataclass(frozen=True)
class TrackerDrift:
    """Slow VRH-T drift onset: the VR frame creeps off its anchor.

    Deterministic (no schedule RNG): from ``onset_s`` the reported
    frame translates along ``direction`` at ``rate_m_per_s`` until the
    offset saturates at ``max_m`` -- the §4 situation whose only cure
    is a mapping-only re-training.
    """

    onset_s: float = 2.0
    rate_m_per_s: float = 0.004
    max_m: float = 0.04
    direction: Tuple[float, float, float] = (1.0, 0.0, 0.0)

    category = TRACKER
    kind = "drift"

    def offset_at(self, t_s: float) -> np.ndarray:
        axis = np.asarray(self.direction, dtype=float)
        norm = np.linalg.norm(axis)
        if norm == 0:
            raise ValueError("drift direction cannot be zero")
        magnitude = min(max(t_s - self.onset_s, 0.0) * self.rate_m_per_s,
                        self.max_m)
        return axis / norm * magnitude


@dataclass(frozen=True)
class ChannelBlockage:
    """LOS blockage windows: someone walks through the beam.

    Either pass explicit ``events`` -- anything with ``start_s`` /
    ``end_s`` attributes, by design the handover study's
    :class:`repro.simulate.handover.OcclusionEvent` -- or let the
    injector draw Poisson windows; explicit events win when both are
    given.  (Duck-typed rather than imported so the faults package
    never depends on the simulation package it is injected into.)
    """

    rate_hz: float = 0.2
    mean_duration_s: float = 0.4
    events: Tuple = ()

    category = CHANNEL
    kind = "blockage"

    def windows(self, duration_s: float, rng: np.random.Generator):
        if self.events:
            return [(ev.start_s, min(ev.end_s, duration_s))
                    for ev in self.events if ev.start_s < duration_s]
        return poisson_windows(rng, duration_s, self.rate_hz,
                               self.mean_duration_s)


@dataclass(frozen=True)
class AttenuationRamp:
    """Extra channel loss ramping up from ``start_s`` (deterministic)."""

    start_s: float = 0.0
    ramp_db_per_s: float = 1.0
    max_db: float = 8.0

    category = CHANNEL
    kind = "attenuation"

    def extra_loss_db(self, t_s: float) -> float:
        return min(max(t_s - self.start_s, 0.0) * self.ramp_db_per_s,
                   self.max_db)


@dataclass(frozen=True)
class GalvoSaturation:
    """The servo amplifier saturates below the DAQ's nominal range.

    Commanded voltages beyond ``limit_v`` are clamped (an aged or
    misconfigured driver), silently degrading pointing accuracy at the
    edges of the coverage cone.
    """

    limit_v: float = 6.0

    category = ACTUATOR
    kind = "saturation"

    def clamp(self, voltage: float) -> float:
        return min(max(voltage, -self.limit_v), self.limit_v)


@dataclass(frozen=True)
class StuckMirror:
    """One mirror axis stops responding for a window (deterministic)."""

    start_s: float = 1.0
    end_s: float = 2.0
    side: str = "tx"      # "tx" or "rx"
    axis: int = 0         # 0 = first mirror voltage, 1 = second

    category = ACTUATOR
    kind = "stuck"

    def __post_init__(self):
        if self.side not in ("tx", "rx"):
            raise ValueError("side must be 'tx' or 'rx'")
        if self.axis not in (0, 1):
            raise ValueError("axis must be 0 or 1")

    def active_at(self, t_s: float) -> bool:
        return self.start_s <= t_s < self.end_s


@dataclass(frozen=True)
class CommandLoss:
    """Control-channel loss: a fraction of commands never arrive."""

    probability: float = 0.05

    category = ACTUATOR
    kind = "command-loss"

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")


@dataclass(frozen=True)
class CommandJitter:
    """Control-channel latency jitter added per delivered command."""

    max_extra_s: float = 0.004

    category = ACTUATOR
    kind = "command-jitter"

    def __post_init__(self):
        if self.max_extra_s < 0:
            raise ValueError("jitter cannot be negative")


#: Fault classes whose schedule is a list of (start, end) windows.
WINDOWED_FAULTS = (TrackerDropout, TrackerFreeze, TrackerOutlierBurst,
                   ChannelBlockage)
