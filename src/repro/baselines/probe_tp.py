"""Baseline: probe/feedback-based tracking and pointing (Section 3).

The traditional alternative to Cyclops's learned pointing is to servo
on *received power*: dither the mirror voltages, keep what helps.  The
paper rules it out: "the associated pointing technique will incur
prohibitively high latency due to the need to jointly optimize the TX
and RX steering parameters."

The physics of that argument: each dither probe costs real time -- a
mirror step (~300 us settle), a DAC conversion, and a power
measurement -- and a joint 4-voltage optimization needs dozens of
probes per correction.  While the probes run, the headset keeps
moving.  :class:`ProbeTracker` implements a competent version of the
approach (coordinate dither with per-axis step adaptation) against the
same simulated physics, so the bench can measure exactly how much
slower its tolerated head speed is than the learned pointer's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .. import constants
from ..link import LinkStateMachine
from ..simulate.rig import Testbed

#: Wall-clock cost of one probe: mirror settle + DAC + power read.
PROBE_LATENCY_S = constants.GM_SMALL_ANGLE_LATENCY_S + 1.0e-3

#: Dither amplitude in volts (~0.7 mrad mechanical).
DITHER_STEP_V = 0.04


@dataclass(frozen=True)
class ProbeRunResult:
    """Connectivity of one probe-TP run."""

    sample_times_s: np.ndarray
    power_dbm: np.ndarray
    link_up: np.ndarray
    probes: int

    @property
    def uptime_fraction(self) -> float:
        if self.link_up.size == 0:
            return 0.0
        return float(np.mean(self.link_up))


@dataclass
class ProbeTracker:
    """Power-feedback TP: coordinate dither over the four voltages.

    Each :meth:`run` step advances simulated time by
    ``PROBE_LATENCY_S`` per probe -- the honest cost the paper's
    argument hinges on.
    """

    testbed: Testbed
    dither_step_v: float = DITHER_STEP_V
    probe_latency_s: float = PROBE_LATENCY_S

    def run(self, profile, duration_s: float = None,
            start_aligned: bool = True) -> ProbeRunResult:
        """Track a motion profile using only power feedback."""
        if duration_s is None:
            duration_s = profile.duration_s
        testbed = self.testbed
        sfp = testbed.design.sfp
        state = LinkStateMachine(sfp, initially_up=start_aligned)
        if start_aligned:
            testbed.align_exhaustively(profile.pose_at(0.0))
        voltages = list(testbed.tx_hardware.voltages
                        + testbed.rx_hardware.voltages)

        times: List[float] = []
        powers: List[float] = []
        ups: List[bool] = []
        t = 0.0
        probes = 0
        axis = 0
        directions = [1.0, 1.0, 1.0, 1.0]
        # Power at the current setting, measured "now".
        current_power = self._measure(voltages, profile.pose_at(t))

        def record(time_s: float, power: float) -> None:
            times.append(time_s)
            powers.append(power)
            ups.append(state.observe(time_s, power))

        while t < duration_s:
            # Probe the next axis in its last-good direction.  The
            # beam *physically sits* at the probed setting while the
            # mirror settles and the power is read -- sensing the
            # gradient spends link quality, which is the crux of the
            # paper's argument against feedback-based TP.
            candidate = list(voltages)
            candidate[axis] += directions[axis] * self.dither_step_v
            t += self.probe_latency_s
            probes += 1
            pose = profile.pose_at(t)
            probed = self._measure(candidate, pose)
            record(t, probed)
            if probed > current_power:
                voltages = candidate
                current_power = probed
            else:
                # Flip this axis's direction and restore the setting
                # (another mirror move the link must live through).
                directions[axis] *= -1.0
                t += self.probe_latency_s
                probes += 1
                pose = profile.pose_at(t)
                current_power = self._measure(voltages, pose)
                record(t, current_power)
            axis = (axis + 1) % 4
        return ProbeRunResult(sample_times_s=np.array(times),
                              power_dbm=np.array(powers),
                              link_up=np.array(ups, dtype=bool),
                              probes=probes)

    def _measure(self, voltages, pose) -> float:
        """Apply a 4-voltage setting and read received power."""
        clip = self.testbed.tx_hardware.daq.voltage_range_v - 0.01
        v = np.clip(voltages, -clip, clip)
        self.testbed.tx_hardware.apply(float(v[0]), float(v[1]))
        self.testbed.rx_hardware.apply(float(v[2]), float(v[3]))
        return self.testbed.channel.received_power_dbm(pose)
