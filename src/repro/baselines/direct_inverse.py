"""Baseline: directly regressing the reverse function ``G'``.

Footnote 3 (and 7) of the paper: "In our experiments, we tried to learn
the much simpler function G' directly, but even several hundred
training samples yielded an error of a few cms."  The failure mode is
generalization: samples can only be gathered where a target surface
exists (the calibration board), and a black-box regressor learns
nothing about how voltages should change with target *depth* -- whereas
the physical model ``G`` extrapolates anywhere by construction.

This module implements that baseline faithfully: polynomial regression
from target coordinates to voltages, trained on board samples, so the
ablation bench can show mm-level on-board accuracy collapsing to cm off
the board plane.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _features(points: np.ndarray, degree: int) -> np.ndarray:
    """Full polynomial feature expansion of 3D points up to ``degree``."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.shape[1] != 3:
        raise ValueError("expected (n, 3) target points")
    columns = [np.ones(len(pts))]
    for total in range(1, degree + 1):
        for i in range(total + 1):
            for j in range(total - i + 1):
                k = total - i - j
                columns.append(pts[:, 0] ** i * pts[:, 1] ** j
                               * pts[:, 2] ** k)
    return np.column_stack(columns)


@dataclass
class DirectInverseRegressor:
    """Least-squares polynomial fit of ``(x, y, z) -> (v1, v2)``."""

    degree: int = 3

    def __post_init__(self):
        if self.degree < 1:
            raise ValueError("polynomial degree must be at least 1")
        self._coefficients = None

    def fit(self, targets: np.ndarray, voltages: np.ndarray
            ) -> "DirectInverseRegressor":
        """Fit from (n, 3) target points and (n, 2) voltage pairs."""
        design = _features(targets, self.degree)
        volts = np.asarray(voltages, dtype=float)
        if volts.shape != (len(design), 2):
            raise ValueError("voltages must be (n, 2), matching targets")
        self._coefficients, *_ = np.linalg.lstsq(design, volts, rcond=None)
        return self

    def predict(self, targets: np.ndarray) -> np.ndarray:
        """Predicted (n, 2) voltages for target points."""
        if self._coefficients is None:
            raise RuntimeError("regressor is not fitted")
        return _features(targets, self.degree) @ self._coefficients
