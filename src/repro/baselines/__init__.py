"""Comparison points and ablations the paper argues against."""

from .constant_origin import ConstantOriginModel
from .direct_inverse import DirectInverseRegressor
from .lookup import LookupFeasibility
from .probe_tp import ProbeRunResult, ProbeTracker
from .static import StaticRunResult, run_static

__all__ = [
    "ConstantOriginModel",
    "DirectInverseRegressor",
    "LookupFeasibility",
    "ProbeRunResult",
    "ProbeTracker",
    "StaticRunResult",
    "run_static",
]
