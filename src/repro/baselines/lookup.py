"""Baseline: tabulating or directly learning ``P`` (footnotes 3 and 5).

The paper dismisses two "obvious" alternatives with a back-of-envelope
argument this module makes executable:

* precomputing ``P`` for every VRH position and looking it up at run
  time -- "not feasible due to the large number (~10^18 in a m^3
  space) of VRH positions required for mm-level accuracy";
* learning ``P`` directly from aligned samples -- each sample costs
  minutes of exhaustive search, so the needed corpus "can take years".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class LookupFeasibility:
    """Cost model for a lookup-table / direct-learning ``P``."""

    volume_m3: float = 1.0
    position_resolution_m: float = 1e-3
    orientation_range_rad: float = math.pi  # +/- 90 degrees per axis
    orientation_resolution_rad: float = 1e-3
    seconds_per_sample: float = 90.0  # exhaustive search takes 1-2 min

    def position_cells(self) -> float:
        """Number of distinguishable locations."""
        return self.volume_m3 / self.position_resolution_m ** 3

    def orientation_cells(self) -> float:
        """Number of distinguishable orientations (3 axes)."""
        per_axis = self.orientation_range_rad / \
            self.orientation_resolution_rad
        return per_axis ** 3

    def table_entries(self) -> float:
        """Full domain size of ``P`` at this resolution.

        With the defaults this lands around 10^18, matching the
        paper's footnote 5 estimate.
        """
        return self.position_cells() * self.orientation_cells()

    def collection_years(self, samples: float = None) -> float:
        """Wall-clock years to gather ``samples`` aligned tuples.

        Defaults to the full table; pass a smaller corpus to price
        direct function approximation instead (footnote 3's "tens of
        thousands or many magnitudes more").
        """
        if samples is None:
            samples = self.table_entries()
        return samples * self.seconds_per_sample / SECONDS_PER_YEAR
