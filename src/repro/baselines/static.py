"""Baseline: a static (no tracking-and-pointing) FSO link.

The zeroth-order comparison point: align once, never steer again.  The
link then lives or dies purely on the optical movement tolerance --
which is exactly why the paper needs a TP mechanism at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulate.rig import Testbed


@dataclass(frozen=True)
class StaticRunResult:
    """Connectivity of a never-steered link under motion."""

    sample_times_s: np.ndarray
    connected: np.ndarray

    @property
    def uptime_fraction(self) -> float:
        if self.connected.size == 0:
            return 0.0
        return float(np.mean(self.connected))


def run_static(testbed: Testbed, profile, duration_s: float = None,
               dt_s: float = 1e-3) -> StaticRunResult:
    """Replay a motion profile with the GMs frozen at the start pose.

    The link is exhaustively aligned for the profile's initial pose,
    then the mirrors never move again.  No SFP re-lock modelling is
    needed: we report raw signal-present connectivity, the most
    charitable possible reading for this baseline.
    """
    if duration_s is None:
        duration_s = profile.duration_s
    testbed.align_exhaustively(profile.pose_at(0.0))
    steps = int(round(duration_s / dt_s))
    times = np.arange(1, steps + 1) * dt_s
    connected = np.empty(steps, dtype=bool)
    for i, t in enumerate(times):
        state = testbed.channel.evaluate(profile.pose_at(float(t)))
        connected[i] = state.connected
    return StaticRunResult(sample_times_s=times, connected=connected)
