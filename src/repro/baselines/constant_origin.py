"""Ablation: modelling the beam origin ``p`` as voltage-independent.

Footnote 6: "In simpler applications with limited range of motions, p
may be assumed to be a constant as in [32, 33], but in reality it
depends on the voltages -- this dependence results in distortion [58]
and needs to be considered for high accuracy."

:class:`ConstantOriginModel` wraps a full GMA model but pins the
originating point at its rest value, so the ablation bench can measure
exactly how much accuracy the simplification costs across the steering
cone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.gma import GmaModel
from ..geometry import Plane, Ray


@dataclass(frozen=True)
class ConstantOriginModel:
    """A GMA model whose beams all emanate from the rest-voltage origin."""

    full_model: GmaModel

    def __post_init__(self):
        rest = self.full_model.beam(0.0, 0.0)
        object.__setattr__(self, "_origin", rest.origin)

    @property
    def origin(self) -> np.ndarray:
        """The frozen originating point."""
        return self._origin

    def beam(self, v1: float, v2: float) -> Ray:
        """Direction from the full model, origin pinned at rest."""
        direction = self.full_model.beam(v1, v2).direction
        return Ray(self._origin, direction)

    def board_error_m(self, v1: float, v2: float, board: Plane) -> float:
        """Board-hit discrepancy vs the full (distortion-aware) model."""
        full_hit = board.intersect_ray(self.full_model.beam(v1, v2),
                                       forward_only=False)
        const_hit = board.intersect_ray(self.beam(v1, v2),
                                        forward_only=False)
        return float(np.linalg.norm(full_hit - const_hit))
