"""Rigid transforms (SE(3)) with a 6-parameter encoding.

Section 4.2 learns the K-space -> VR-space mapping for each GMA as six
parameters (a rigid transform per Corke's robotics text).  We encode a
transform as ``(tx, ty, tz, roll, pitch, yaw)`` so the 12 mapping
parameters of the joint fit are simply the concatenation of two of these
vectors, directly optimizable by ``scipy.optimize.least_squares``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ray import Ray
from .rotation import euler_to_matrix, is_rotation_matrix, matrix_to_euler
from .vec import as_vec3


@dataclass(frozen=True)
class RigidTransform:
    """A rotation followed by a translation: ``x -> R x + t``."""

    rotation: np.ndarray
    translation: np.ndarray

    def __post_init__(self):
        r = np.asarray(self.rotation, dtype=float)
        if not is_rotation_matrix(r, tol=1e-6):
            raise ValueError("rotation must be a proper rotation matrix")
        object.__setattr__(self, "rotation", r)
        object.__setattr__(self, "translation", as_vec3(self.translation))

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls) -> "RigidTransform":
        """The do-nothing transform."""
        return cls(np.eye(3), np.zeros(3))

    @classmethod
    def from_params(cls, params) -> "RigidTransform":
        """Build from the 6-vector ``(tx, ty, tz, roll, pitch, yaw)``."""
        arr = np.asarray(params, dtype=float)
        if arr.shape != (6,):
            raise ValueError(f"expected 6 parameters, got shape {arr.shape}")
        rotation = euler_to_matrix(arr[3], arr[4], arr[5])
        return cls(rotation, arr[:3])

    def to_params(self) -> np.ndarray:
        """Inverse of :meth:`from_params`."""
        roll, pitch, yaw = matrix_to_euler(self.rotation)
        return np.concatenate([self.translation, [roll, pitch, yaw]])

    # -- application -------------------------------------------------------

    def apply_point(self, point) -> np.ndarray:
        """Transform a point (rotation and translation)."""
        return self.rotation @ as_vec3(point) + self.translation

    def apply_direction(self, direction) -> np.ndarray:
        """Transform a direction (rotation only)."""
        return self.rotation @ as_vec3(direction)

    def apply_ray(self, ray: Ray) -> Ray:
        """Transform a ray: move its origin, rotate its direction."""
        return Ray(self.apply_point(ray.origin),
                   self.apply_direction(ray.direction))

    # -- algebra -----------------------------------------------------------

    def compose(self, other: "RigidTransform") -> "RigidTransform":
        """``self after other``: apply ``other`` first, then ``self``."""
        return RigidTransform(
            self.rotation @ other.rotation,
            self.rotation @ other.translation + self.translation,
        )

    def inverse(self) -> "RigidTransform":
        """The transform undoing this one."""
        r_inv = self.rotation.T
        return RigidTransform(r_inv, -(r_inv @ self.translation))

    def almost_equal(self, other: "RigidTransform",
                     tol: float = 1e-9) -> bool:
        """True when both transforms agree within ``tol``."""
        return (np.allclose(self.rotation, other.rotation, atol=tol)
                and np.allclose(self.translation, other.translation,
                                atol=tol))
