"""Specular reflection off a plane mirror.

Implements the paper's reflection operator ``R`` (Section 4.1): given an
input beam ``(p0, x0)`` and a mirror described by its (possibly rotated)
normal ``n`` and a pivot point ``q`` on its surface, produce the output
beam ``(p, x)`` whose origin is the strike point on the mirror.
"""

from __future__ import annotations

import numpy as np

from .plane import Plane
from .ray import Ray
from .vec import as_vec3, dot, normalize


def reflect_direction(direction, normal) -> np.ndarray:
    """Reflect a direction vector about a mirror normal.

    ``d' = d - 2 (d . n) n`` -- the sign of ``normal`` does not matter.
    """
    d = normalize(direction)
    n = normalize(normal)
    return d - 2.0 * dot(d, n) * n


def reflect_ray(ray: Ray, mirror: Plane, forward_only: bool = True) -> Ray:
    """Reflect ``ray`` off ``mirror``.

    The returned ray originates at the strike point, which is the
    quantity the paper calls the beam's originating point ``p`` when the
    mirror is the GM's second mirror.  Raises
    :class:`repro.geometry.plane.NoIntersectionError` if the beam never
    reaches the mirror plane.  ``forward_only=False`` permits strike
    points behind the ray origin -- needed when evaluating *fitted* GMA
    models, whose gauge freedoms can legally produce such geometry.
    """
    strike = mirror.intersect_ray(ray, forward_only=forward_only)
    return Ray(strike, reflect_direction(ray.direction, mirror.normal))


def reflect_beam(p0, x0, normal, q) -> tuple:
    """The paper's ``R(p0, x0, n, q)`` convenience form.

    Accepts raw vectors and returns ``(p, x)`` as arrays, matching the
    notation of Section 4.1 where the GMA expression chains two
    reflections: first mirror then second mirror.
    """
    out = reflect_ray(Ray(as_vec3(p0), x0), Plane(as_vec3(q), normal))
    return out.origin, out.direction
