"""Rays: the representation of an optical beam's centerline.

The paper describes a beam as ``(p, x)`` -- an originating point and a
direction vector.  :class:`Ray` is that pair, with the handful of
geometric queries the TP algorithms need (point-along, distance to a
point, closest approach between two rays).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .vec import as_vec3, distance, dot, normalize


@dataclass(frozen=True)
class Ray:
    """A half-infinite line: ``origin + t * direction`` for ``t >= 0``.

    ``direction`` is normalized on construction, so ``t`` is metric
    distance along the beam.
    """

    origin: np.ndarray
    direction: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "origin", as_vec3(self.origin))
        object.__setattr__(self, "direction", normalize(self.direction))

    def point_at(self, t: float) -> np.ndarray:
        """Point a distance ``t`` along the ray from its origin."""
        return self.origin + float(t) * self.direction

    def distance_to_point(self, point) -> float:
        """Perpendicular distance from ``point`` to the ray's line."""
        p = as_vec3(point)
        offset = p - self.origin
        along = dot(offset, self.direction)
        closest = self.origin + along * self.direction
        return distance(p, closest)

    def closest_point_to(self, point) -> np.ndarray:
        """Point on the ray's line closest to ``point``."""
        p = as_vec3(point)
        along = dot(p - self.origin, self.direction)
        return self.point_at(along)


def closest_approach(a: Ray, b: Ray) -> tuple:
    """Closest points between two rays' supporting lines.

    Returns ``(point_on_a, point_on_b, gap)``.  For (nearly) parallel
    rays the points are taken at ``a``'s origin and its projection onto
    ``b``.  Used by alignment diagnostics: two perfectly aligned beams
    have ``gap == 0`` along the shared optical axis.
    """
    w0 = a.origin - b.origin
    ad = a.direction
    bd = b.direction
    a_dot_b = dot(ad, bd)
    denom = 1.0 - a_dot_b * a_dot_b
    if denom < 1e-12:
        # Parallel lines: any pairing has the same gap.
        t_a = 0.0
        t_b = dot(w0, bd)
    else:
        d_a = dot(w0, ad)
        d_b = dot(w0, bd)
        t_a = (a_dot_b * d_b - d_a) / denom
        t_b = (d_b - a_dot_b * d_a) / denom
    p_a = a.point_at(t_a)
    p_b = b.point_at(t_b)
    return p_a, p_b, distance(p_a, p_b)


def skew_gap(a: Ray, b: Ray) -> float:
    """Minimum distance between the supporting lines of two rays."""
    return closest_approach(a, b)[2]
