"""Geometry substrate: vectors, rotations, rays, planes, mirrors, SE(3).

Everything the Cyclops optical model needs is exact 3D geometry; there is
deliberately no rendering or approximation in this package.
"""

from .plane import NoIntersectionError, Plane
from .ray import Ray, closest_approach, skew_gap
from .reflection import reflect_beam, reflect_direction, reflect_ray
from .rotation import (
    euler_to_matrix,
    is_rotation_matrix,
    matrix_to_axis_angle,
    matrix_to_euler,
    rotate,
    rotation_angle,
    rotation_between,
    rotation_matrix,
)
from .transform import RigidTransform
from .vec import (
    angle_between,
    as_vec3,
    cross,
    distance,
    dot,
    is_unit,
    norm,
    normalize,
    perpendicular_to,
)

__all__ = [
    "NoIntersectionError",
    "Plane",
    "Ray",
    "RigidTransform",
    "angle_between",
    "as_vec3",
    "closest_approach",
    "cross",
    "distance",
    "dot",
    "euler_to_matrix",
    "is_rotation_matrix",
    "is_unit",
    "matrix_to_axis_angle",
    "matrix_to_euler",
    "norm",
    "normalize",
    "perpendicular_to",
    "reflect_beam",
    "reflect_direction",
    "reflect_ray",
    "rotate",
    "rotation_angle",
    "rotation_between",
    "rotation_matrix",
    "skew_gap",
]
