"""Planes and ray-plane intersection.

Mirror surfaces, the K-space calibration board, and the ``G'`` iteration's
projection plane ``P`` (Section 4.3) are all planes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ray import Ray
from .vec import as_vec3, dot, normalize


class NoIntersectionError(ValueError):
    """Raised when a ray does not hit a plane (parallel or behind)."""


@dataclass(frozen=True)
class Plane:
    """A plane through ``point`` with unit ``normal``."""

    point: np.ndarray
    normal: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "point", as_vec3(self.point))
        object.__setattr__(self, "normal", normalize(self.normal))

    def signed_distance(self, point) -> float:
        """Signed distance of ``point`` from the plane (+ on normal side)."""
        return dot(as_vec3(point) - self.point, self.normal)

    def contains(self, point, tol: float = 1e-9) -> bool:
        """True when ``point`` lies on the plane within ``tol``."""
        return abs(self.signed_distance(point)) <= tol

    def project(self, point) -> np.ndarray:
        """Orthogonal projection of ``point`` onto the plane."""
        p = as_vec3(point)
        return p - self.signed_distance(p) * self.normal

    def intersect_ray(self, ray: Ray, forward_only: bool = True) -> np.ndarray:
        """Intersection point of ``ray`` with the plane.

        Raises :class:`NoIntersectionError` when the ray is parallel to
        the plane, or (with ``forward_only``) when the intersection lies
        behind the ray's origin -- a beam cannot hit a mirror backwards.
        """
        denom = dot(ray.direction, self.normal)
        if abs(denom) < 1e-12:
            raise NoIntersectionError("ray is parallel to the plane")
        t = -self.signed_distance(ray.origin) / denom
        if forward_only and t < -1e-12:
            raise NoIntersectionError("intersection is behind the ray origin")
        return ray.point_at(t)

    def intersection_distance(self, ray: Ray) -> float:
        """Distance along ``ray`` to its intersection with the plane."""
        denom = dot(ray.direction, self.normal)
        if abs(denom) < 1e-12:
            raise NoIntersectionError("ray is parallel to the plane")
        return -self.signed_distance(ray.origin) / denom
