"""Small 3-vector helpers used throughout the geometry substrate.

All geometry code represents points and directions as ``numpy`` arrays of
shape ``(3,)`` with ``float64`` dtype.  These helpers centralize the
validation and the handful of operations numpy does not spell nicely.
"""

from __future__ import annotations

import numpy as np

#: Tolerance under which a vector is considered degenerate (zero length).
DEGENERATE_NORM = 1e-12


def as_vec3(value) -> np.ndarray:
    """Coerce ``value`` into a float64 array of shape ``(3,)``.

    Raises ``ValueError`` for anything that is not a 3-element sequence.
    """
    arr = np.asarray(value, dtype=float)
    if arr.shape != (3,):
        raise ValueError(f"expected a 3-vector, got shape {arr.shape}")
    return arr


def norm(v) -> float:
    """Euclidean length of a 3-vector."""
    return float(np.linalg.norm(as_vec3(v)))


def normalize(v) -> np.ndarray:
    """Return ``v`` scaled to unit length.

    Raises ``ValueError`` if ``v`` is (numerically) the zero vector, since
    a direction cannot be recovered from it.
    """
    arr = as_vec3(v)
    length = float(np.linalg.norm(arr))
    if length < DEGENERATE_NORM:
        raise ValueError("cannot normalize a zero-length vector")
    return arr / length


def distance(a, b) -> float:
    """Euclidean distance between two points."""
    return float(np.linalg.norm(as_vec3(a) - as_vec3(b)))


def dot(a, b) -> float:
    """Dot product as a plain float."""
    return float(np.dot(as_vec3(a), as_vec3(b)))


def cross(a, b) -> np.ndarray:
    """Cross product of two 3-vectors."""
    return np.cross(as_vec3(a), as_vec3(b))


def angle_between(a, b) -> float:
    """Angle in radians between two directions, in ``[0, pi]``."""
    ua = normalize(a)
    ub = normalize(b)
    cosine = float(np.clip(np.dot(ua, ub), -1.0, 1.0))
    return float(np.arccos(cosine))


def is_unit(v, tol: float = 1e-9) -> bool:
    """True when ``v`` has unit length within ``tol``."""
    return abs(norm(v) - 1.0) <= tol


def perpendicular_to(v) -> np.ndarray:
    """Return an arbitrary unit vector perpendicular to ``v``.

    Useful for building orthonormal bases around a beam direction.
    """
    u = normalize(v)
    # Pick the world axis least aligned with u to avoid degeneracy.
    axis = np.zeros(3)
    axis[int(np.argmin(np.abs(u)))] = 1.0
    return normalize(np.cross(u, axis))
