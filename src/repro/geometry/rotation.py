"""Rotations: Rodrigues axis-angle matrices and Euler-angle conversions.

The GMA model (Section 4.1) rotates mirror normals about fixed rotation
axes by voltage-proportional angles; ``rotation_matrix`` implements the
``R(r, theta)`` operator the paper uses.  Euler angles (roll/pitch/yaw,
intrinsic XYZ) represent headset orientation in ``repro.vrh.pose``.
"""

from __future__ import annotations

import numpy as np

from .vec import as_vec3, normalize


def rotation_matrix(axis, angle_rad: float) -> np.ndarray:
    """Rodrigues rotation matrix rotating by ``angle_rad`` about ``axis``.

    ``axis`` need not be unit length; it is normalized here.  Matches the
    paper's ``R(r, theta)`` operator used to re-orient mirror normals.
    """
    u = normalize(axis)
    cos = float(np.cos(angle_rad))
    sin = float(np.sin(angle_rad))
    ux, uy, uz = u
    cross = np.array([[0.0, -uz, uy], [uz, 0.0, -ux], [-uy, ux, 0.0]])
    return cos * np.eye(3) + sin * cross + (1.0 - cos) * np.outer(u, u)


def rotate(axis, angle_rad: float, v) -> np.ndarray:
    """Rotate vector ``v`` by ``angle_rad`` about ``axis``."""
    return rotation_matrix(axis, angle_rad) @ as_vec3(v)


def euler_to_matrix(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Rotation matrix from intrinsic XYZ (roll, pitch, yaw) Euler angles.

    Convention: ``R = Rz(yaw) @ Ry(pitch) @ Rx(roll)``, i.e. roll about x
    first, then pitch about y, then yaw about z, all in radians.
    """
    cr, sr = np.cos(roll), np.sin(roll)
    cp, sp = np.cos(pitch), np.sin(pitch)
    cy, sy = np.cos(yaw), np.sin(yaw)
    rx = np.array([[1, 0, 0], [0, cr, -sr], [0, sr, cr]], dtype=float)
    ry = np.array([[cp, 0, sp], [0, 1, 0], [-sp, 0, cp]], dtype=float)
    rz = np.array([[cy, -sy, 0], [sy, cy, 0], [0, 0, 1]], dtype=float)
    return rz @ ry @ rx


def matrix_to_euler(matrix: np.ndarray) -> tuple:
    """Inverse of :func:`euler_to_matrix`; returns ``(roll, pitch, yaw)``.

    Uses the standard ZYX extraction.  At gimbal lock (``|pitch| = pi/2``)
    the split between roll and yaw is not unique; roll is set to zero.
    """
    m = np.asarray(matrix, dtype=float)
    if m.shape != (3, 3):
        raise ValueError(f"expected a 3x3 matrix, got shape {m.shape}")
    sp = float(np.clip(-m[2, 0], -1.0, 1.0))
    pitch = float(np.arcsin(sp))
    if abs(sp) < 1.0 - 1e-10:
        roll = float(np.arctan2(m[2, 1], m[2, 2]))
        yaw = float(np.arctan2(m[1, 0], m[0, 0]))
    else:
        roll = 0.0
        yaw = float(np.arctan2(-m[0, 1], m[1, 1]))
    return roll, pitch, yaw


def rotation_angle(matrix: np.ndarray) -> float:
    """Rotation angle (radians) of a rotation matrix, in ``[0, pi]``.

    This is the geodesic distance from the identity -- used to quantify
    angular motion between two headset orientations.
    """
    m = np.asarray(matrix, dtype=float)
    cosine = float(np.clip((np.trace(m) - 1.0) / 2.0, -1.0, 1.0))
    return float(np.arccos(cosine))


def rotation_between(from_dir, to_dir) -> np.ndarray:
    """The smallest rotation matrix taking one direction onto another.

    Used when mounting a GMA so its rest beam points at a chosen
    target.  For anti-parallel inputs an arbitrary perpendicular axis
    is used (the 180-degree rotation is not unique).
    """
    a = normalize(from_dir)
    b = normalize(to_dir)
    cosine = float(np.clip(np.dot(a, b), -1.0, 1.0))
    axis = np.cross(a, b)
    norm = float(np.linalg.norm(axis))
    if norm < 1e-12:
        if cosine > 0:
            return np.eye(3)
        # Anti-parallel: rotate pi about any axis perpendicular to a.
        helper = np.zeros(3)
        helper[int(np.argmin(np.abs(a)))] = 1.0
        axis = np.cross(a, helper)
        return rotation_matrix(axis, np.pi)
    return rotation_matrix(axis / norm, float(np.arctan2(norm, cosine)))


def matrix_to_axis_angle(matrix: np.ndarray) -> tuple:
    """Decompose a rotation matrix into ``(axis, angle)``.

    ``angle`` is in ``[0, pi]``.  For the identity (angle 0) the axis is
    arbitrary and +z is returned.  Used for interpolating headset
    orientations along motion traces.
    """
    m = np.asarray(matrix, dtype=float)
    angle = rotation_angle(m)
    if angle < 1e-12:
        return np.array([0.0, 0.0, 1.0]), 0.0
    if abs(angle - np.pi) < 1e-6:
        # Near pi the antisymmetric part vanishes; use the symmetric part.
        b = (m + np.eye(3)) / 2.0
        axis = np.sqrt(np.maximum(np.diag(b), 0.0))
        # Fix signs from the off-diagonal terms, anchored on the largest
        # component (which is safely non-zero).
        k = int(np.argmax(axis))
        for i in range(3):
            if i != k and b[k, i] < 0:
                axis[i] = -axis[i]
        axis = axis / np.linalg.norm(axis)
        return axis, angle
    axis = np.array([m[2, 1] - m[1, 2], m[0, 2] - m[2, 0],
                     m[1, 0] - m[0, 1]])
    axis = axis / (2.0 * np.sin(angle))
    return normalize(axis), angle


def is_rotation_matrix(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """True when ``matrix`` is orthonormal with determinant +1."""
    m = np.asarray(matrix, dtype=float)
    if m.shape != (3, 3):
        return False
    orthonormal = np.allclose(m @ m.T, np.eye(3), atol=tol)
    return orthonormal and abs(float(np.linalg.det(m)) - 1.0) <= tol
