"""Second-order galvo servo dynamics.

The GVS102's "300 us small-angle latency" is the settling time of a
closed-loop servo.  :class:`ServoModel` models that loop as a
critically damped second-order system -- the standard galvo tuning,
fast with no overshoot -- calibrated so a small (0.2 degree) step
settles to the 10 urad accuracy spec in 300 us.  It refines the
spec-level square-root settle-time scaling with an actual trajectory,
so a simulation can sample the mirror angle *mid-step*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import constants

#: The "small angle" the datasheet's latency figure refers to (mech).
SMALL_STEP_RAD = math.radians(0.2)


def _critically_damped_remainder(x: float) -> float:
    """Normalized remaining error ``(1 + x) e^-x`` at ``x = w t``."""
    return (1.0 + x) * math.exp(-x)


def _solve_remainder(target: float) -> float:
    """Invert the remainder: smallest ``x`` with remainder <= target."""
    if target >= 1.0:
        return 0.0
    lo, hi = 0.0, 60.0
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if _critically_damped_remainder(mid) > target:
            lo = mid
        else:
            hi = mid
    return hi


@dataclass(frozen=True)
class ServoModel:
    """A critically damped mirror servo.

    ``natural_frequency_rad_s`` is the closed-loop bandwidth ``w``;
    the step response is ``theta(t) = step * (1 - (1 + w t) e^(-w t))``.
    """

    natural_frequency_rad_s: float
    accuracy_rad: float = constants.GM_ANGULAR_ACCURACY_RAD

    def __post_init__(self):
        if self.natural_frequency_rad_s <= 0:
            raise ValueError("natural frequency must be positive")
        if self.accuracy_rad <= 0:
            raise ValueError("accuracy must be positive")

    @classmethod
    def calibrated(cls,
                   small_step_rad: float = SMALL_STEP_RAD,
                   settle_time_s: float = (
                       constants.GM_SMALL_ANGLE_LATENCY_S),
                   accuracy_rad: float = (
                       constants.GM_ANGULAR_ACCURACY_RAD)) -> "ServoModel":
        """Build from the datasheet's small-angle settling figure."""
        remainder = accuracy_rad / small_step_rad
        x = _solve_remainder(remainder)
        return cls(natural_frequency_rad_s=x / settle_time_s,
                   accuracy_rad=accuracy_rad)

    def angle_at(self, t_s: float, start_rad: float,
                 target_rad: float) -> float:
        """Mirror angle ``t_s`` after commanding a step."""
        if t_s < 0:
            raise ValueError("time cannot be negative")
        step = target_rad - start_rad
        x = self.natural_frequency_rad_s * t_s
        return target_rad - step * _critically_damped_remainder(x)

    def settle_time_s(self, step_rad: float,
                      tolerance_rad: float = None) -> float:
        """Time until the error falls within ``tolerance_rad``."""
        if tolerance_rad is None:
            tolerance_rad = self.accuracy_rad
        step = abs(step_rad)
        if step <= tolerance_rad:
            return 0.0
        x = _solve_remainder(tolerance_rad / step)
        return x / self.natural_frequency_rad_s

    def error_at(self, t_s: float, step_rad: float) -> float:
        """Remaining pointing error ``t_s`` after a step."""
        x = self.natural_frequency_rad_s * max(t_s, 0.0)
        return abs(step_rad) * _critically_damped_remainder(x)
