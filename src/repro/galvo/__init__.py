"""Galvo-mirror hardware substrate: specs, geometry, DAQ, ground truth."""

from .daq import Daq
from .galvo import CoverageError, GalvoHardware
from .mirror import GmaParams, canonical_gma, mirror_planes, trace
from .servo import ServoModel
from .specs import GVS102, GalvoSpec

__all__ = [
    "CoverageError",
    "Daq",
    "GVS102",
    "GalvoHardware",
    "GalvoSpec",
    "ServoModel",
    "GmaParams",
    "canonical_gma",
    "mirror_planes",
    "trace",
]
