"""The GMA parameter set and its exact two-mirror forward trace.

Section 4.1 parameterizes a GM assembly (GMA) by:

* input beam: originating point ``p0`` and direction ``x0``;
* first mirror: rest normal ``n1``, pivot ``q1`` (a point on both the
  mirror plane and its rotation axis), rotation axis ``r1``;
* second mirror: ``n2``, ``q2``, ``r2``;
* voltage-to-angle scale ``theta1`` (radians of mirror rotation per
  volt), assumed identical for both mirrors.

:func:`trace` is the paper's closed-form expression for
``G(v1, v2) = (p, x)``: rotate each normal by ``R(r_i, theta1 * v_i)``
and chain two reflections.  Both the simulated "real" hardware
(:mod:`repro.galvo.galvo`) and the learned model
(:mod:`repro.core.gma`) evaluate this same function -- the hardware adds
hidden imperfections on top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import (
    Plane,
    Ray,
    RigidTransform,
    as_vec3,
    normalize,
    reflect_ray,
    rotation_matrix,
)


@dataclass(frozen=True)
class GmaParams:
    """The 9 quantities (25 scalars) defining a GMA's optical layout."""

    p0: np.ndarray
    x0: np.ndarray
    n1: np.ndarray
    q1: np.ndarray
    r1: np.ndarray
    n2: np.ndarray
    q2: np.ndarray
    r2: np.ndarray
    theta1: float

    def __post_init__(self):
        object.__setattr__(self, "p0", as_vec3(self.p0))
        object.__setattr__(self, "x0", normalize(self.x0))
        object.__setattr__(self, "n1", normalize(self.n1))
        object.__setattr__(self, "q1", as_vec3(self.q1))
        object.__setattr__(self, "r1", normalize(self.r1))
        object.__setattr__(self, "n2", normalize(self.n2))
        object.__setattr__(self, "q2", as_vec3(self.q2))
        object.__setattr__(self, "r2", normalize(self.r2))
        if self.theta1 <= 0:
            raise ValueError("theta1 must be positive")

    # -- flat encodings for the least-squares fits --------------------------

    def to_vector(self) -> np.ndarray:
        """Flatten to a 25-vector in a fixed order (for optimizers)."""
        return np.concatenate([
            self.p0, self.x0, self.n1, self.q1, self.r1,
            self.n2, self.q2, self.r2, [self.theta1],
        ])

    @classmethod
    def from_vector(cls, vector) -> "GmaParams":
        """Inverse of :meth:`to_vector` (directions re-normalized)."""
        v = np.asarray(vector, dtype=float)
        if v.shape != (25,):
            raise ValueError(f"expected 25 parameters, got shape {v.shape}")
        return cls(p0=v[0:3], x0=v[3:6], n1=v[6:9], q1=v[9:12], r1=v[12:15],
                   n2=v[15:18], q2=v[18:21], r2=v[21:24],
                   theta1=float(v[24]))

    def transformed(self, transform: RigidTransform) -> "GmaParams":
        """Express the same physical GMA in another coordinate frame.

        Points transform fully; directions/normals/axes rotate only.
        This is exactly how the Section 4.2 mapping parameters act on a
        K-space model to produce a VR-space model.
        """
        return GmaParams(
            p0=transform.apply_point(self.p0),
            x0=transform.apply_direction(self.x0),
            n1=transform.apply_direction(self.n1),
            q1=transform.apply_point(self.q1),
            r1=transform.apply_direction(self.r1),
            n2=transform.apply_direction(self.n2),
            q2=transform.apply_point(self.q2),
            r2=transform.apply_direction(self.r2),
            theta1=self.theta1,
        )


def mirror_planes(params: GmaParams, angle1_rad: float,
                  angle2_rad: float) -> tuple:
    """Both mirror planes for given *mechanical* rotation angles.

    The pivots ``q1``/``q2`` sit on the rotation axes and therefore do
    not move; only the normals rotate.
    """
    n1 = rotation_matrix(params.r1, angle1_rad) @ params.n1
    n2 = rotation_matrix(params.r2, angle2_rad) @ params.n2
    return Plane(params.q1, n1), Plane(params.q2, n2)


def trace(params: GmaParams, v1: float, v2: float,
          angle1_rad=None, angle2_rad=None) -> Ray:
    """Evaluate ``G(v1, v2) -> (p, x)`` as an output :class:`Ray`.

    By default the mirror angles are the paper's linear model
    ``theta1 * v``; callers may pass explicit angles (the hardware
    simulator does, to inject its nonlinearity and jitter).
    """
    if angle1_rad is None:
        angle1_rad = params.theta1 * v1
    if angle2_rad is None:
        angle2_rad = params.theta1 * v2
    first, second = mirror_planes(params, angle1_rad, angle2_rad)
    beam = Ray(params.p0, params.x0)
    # forward_only=False: fitted parameter sets may legally describe
    # the same output beams with "behind" strike points (gauge
    # freedom); only the resulting beam line matters.
    mid = reflect_ray(beam, first, forward_only=False)
    return reflect_ray(mid, second, forward_only=False)


def canonical_gma(theta1: float,
                  placement: RigidTransform = None) -> GmaParams:
    """A physically sensible GVS102-like layout, optionally re-placed.

    In the device frame the input beam travels +x, hits the first
    mirror (vertical rotation axis), turns to +y, hits the second
    mirror (horizontal rotation axis) 15 mm later, and exits along +z.
    ``placement`` moves the whole device into a scene frame.
    """
    params = GmaParams(
        p0=np.array([-30e-3, 0.0, 10e-3]),
        x0=np.array([1.0, 0.0, 0.0]),
        n1=np.array([-1.0, 1.0, 0.0]),
        q1=np.array([0.0, 0.0, 10e-3]),
        r1=np.array([0.0, 0.0, 1.0]),
        n2=np.array([0.0, -1.0, 1.0]),
        q2=np.array([0.0, 15e-3, 10e-3]),
        r2=np.array([1.0, 0.0, 0.0]),
        theta1=theta1,
    )
    if placement is None:
        return params
    return params.transformed(placement)
