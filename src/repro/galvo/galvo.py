"""The simulated "real" galvo hardware.

:class:`GalvoHardware` is the ground-truth device the learning pipeline
calibrates against.  It evaluates the same two-mirror reflection chain
as the learnable model, but with imperfections the learner never sees
directly:

* a small quadratic term in the voltage-to-angle response (real servo
  amplifiers are not perfectly linear; the paper's linear ``theta1 * v``
  model is an approximation, and this term is what creates irreducible
  model error of the Table 2 kind);
* per-command angular jitter at the spec'd 10 urad accuracy;
* DAC quantization of the commanded voltages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..determinism import resolve_rng
from ..geometry import Ray
from .daq import Daq
from .mirror import GmaParams, mirror_planes, trace
from .specs import GVS102, GalvoSpec


class CoverageError(ValueError):
    """A commanded voltage fell outside the GM coverage cone.

    The servo controller rejects voltages beyond the DAQ's +/-10 V
    range rather than clamping, so pointing must stay inside the
    field-of-view the mirrors can reach.  Subclasses ``ValueError``
    for backward compatibility with callers that caught the generic
    rejection.
    """


@dataclass
class GalvoHardware:
    """Ground-truth GMA: hidden true parameters plus imperfections.

    ``nonlinearity`` is the quadratic coefficient ``kappa`` in
    ``angle = theta1 * v + kappa * v**2`` (radians per volt squared).
    """

    params: GmaParams
    spec: GalvoSpec = GVS102
    daq: Daq = field(default_factory=Daq)
    nonlinearity: float = 0.0
    #: Jitter source.  Pass ``rng`` or ``seed``; constructing without
    #: either raises unless ``deterministic=False`` documents the
    #: OS-entropy opt-in (see :mod:`repro.determinism`).
    rng: Optional[np.random.Generator] = None
    seed: Optional[int] = None
    deterministic: bool = True

    def __post_init__(self) -> None:
        self.rng = resolve_rng(self.rng, self.seed, self.deterministic,
                               owner="GalvoHardware")
        self._v1 = 0.0
        self._v2 = 0.0
        self._angle1 = self._true_angle(0.0)
        self._angle2 = self._true_angle(0.0)

    # -- voltage handling ----------------------------------------------------

    @property
    def voltages(self) -> Tuple[float, float]:
        """Currently applied (quantized) voltages."""
        return self._v1, self._v2

    def apply(self, v1: float, v2: float) -> float:
        """Command new voltages; returns the mirror settle time.

        Voltages outside the DAC range raise ``ValueError`` (the servo
        controller rejects them) rather than silently clamping, so the
        pointing algorithms must stay inside the coverage cone.  The
        true mirror angles (nonlinearity + jitter) are drawn once per
        command, so every query between two commands sees one
        consistent physical state.
        """
        for v in (v1, v2):
            if not self.daq.in_range(v):
                raise CoverageError(
                    f"voltage {v:+.3f} V outside the +/-"
                    f"{self.daq.voltage_range_v:.0f} V range")
        new_v1 = self.daq.quantize(v1)
        new_v2 = self.daq.quantize(v2)
        step = max(abs(new_v1 - self._v1), abs(new_v2 - self._v2))
        self._v1, self._v2 = new_v1, new_v2
        self._angle1 = self._true_angle(new_v1)
        self._angle2 = self._true_angle(new_v2)
        return self.spec.settle_time_s(step * self.params.theta1)

    # -- the physical response -----------------------------------------------

    def _true_angle(self, voltage: float) -> float:
        """True mirror angle for a voltage, with nonlinearity and jitter."""
        angle = (self.params.theta1 * voltage
                 + self.nonlinearity * voltage * voltage)
        if self.spec.angular_accuracy_rad > 0:
            angle += self.rng.normal(0.0, self.spec.angular_accuracy_rad)
        return angle

    def output_beam(self) -> Ray:
        """The beam currently leaving the GMA (in the params' frame)."""
        return trace(self.params, self._v1, self._v2,
                     angle1_rad=self._angle1, angle2_rad=self._angle2)

    def second_mirror_plane(self):
        """The second mirror's current plane (in the params' frame).

        The channel needs this to locate where an arriving beam strikes
        the steering mirror -- the paper's target point ``tau``.
        """
        return mirror_planes(self.params, self._angle1, self._angle2)[1]

    def beam_for(self, v1: float, v2: float) -> Ray:
        """Apply voltages and return the resulting beam in one call."""
        self.apply(v1, v2)
        return self.output_beam()
