"""Data-acquisition (DAQ) device model.

GM voltages are produced by an MCC USB-1608G-class DAQ: a 16-bit DAC
over +/-10 V.  Its two observable effects are voltage quantization and
the digital-to-analog conversion latency that dominates the 1-2 ms
pointing latency (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants


@dataclass(frozen=True)
class Daq:
    """A bipolar DAC: quantizes commanded voltages, adds latency."""

    bits: int = constants.DAQ_BITS
    voltage_range_v: float = constants.DAQ_VOLTAGE_RANGE_V
    conversion_latency_s: float = constants.DAQ_LATENCY_S

    def __post_init__(self):
        if self.bits < 1:
            raise ValueError("DAC needs at least one bit")
        if self.voltage_range_v <= 0:
            raise ValueError("voltage range must be positive")

    @property
    def voltage_step_v(self) -> float:
        """Smallest representable voltage change (one LSB)."""
        return 2.0 * self.voltage_range_v / (2 ** self.bits)

    def quantize(self, voltage_v: float) -> float:
        """Clamp to range and round to the nearest DAC code."""
        clamped = min(max(voltage_v, -self.voltage_range_v),
                      self.voltage_range_v)
        step = self.voltage_step_v
        return round(clamped / step) * step

    def in_range(self, voltage_v: float) -> bool:
        """True when the commanded voltage is within the output range."""
        return abs(voltage_v) <= self.voltage_range_v
