"""Galvo-mirror device specifications.

The prototype uses the ThorLabs GVS102 two-axis scanning galvo system:
10 urad angular accuracy, 300 us small-angle step latency, 0.5 V per
degree of optical deflection, +/-10 V input range, 10 mm max beam.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import constants


@dataclass(frozen=True)
class GalvoSpec:
    """Electro-mechanical characteristics of one galvo scanner pair."""

    name: str
    volts_per_optical_degree: float
    voltage_range_v: float
    angular_accuracy_rad: float
    small_angle_latency_s: float
    max_beam_diameter_m: float

    def __post_init__(self):
        if self.volts_per_optical_degree <= 0:
            raise ValueError("voltage scale must be positive")
        if self.voltage_range_v <= 0:
            raise ValueError("voltage range must be positive")

    @property
    def mech_rad_per_volt(self) -> float:
        """Mirror (mechanical) rotation per volt.

        A mirror rotation of ``a`` deflects the reflected beam by
        ``2a`` (optical), so the mechanical scale is half the optical
        one implied by ``volts_per_optical_degree``.
        """
        optical_deg_per_volt = 1.0 / self.volts_per_optical_degree
        return math.radians(optical_deg_per_volt) / 2.0

    @property
    def max_mech_angle_rad(self) -> float:
        """Largest mirror rotation reachable within the voltage range."""
        return self.mech_rad_per_volt * self.voltage_range_v

    def settle_time_s(self, step_rad: float) -> float:
        """Time for the mirror to settle after a step of ``step_rad``.

        Small steps settle in the spec'd small-angle latency; larger
        steps scale with the square root of the step (inertia-limited),
        a standard galvo scaling.
        """
        small_step = math.radians(0.2)  # the spec's "small angle"
        if abs(step_rad) <= small_step:
            return self.small_angle_latency_s
        scale = math.sqrt(abs(step_rad) / small_step)
        return self.small_angle_latency_s * scale


GVS102 = GalvoSpec(
    name="GVS102",
    volts_per_optical_degree=constants.GM_VOLTS_PER_OPTICAL_DEGREE,
    voltage_range_v=constants.GM_VOLTAGE_RANGE_V,
    angular_accuracy_rad=constants.GM_ANGULAR_ACCURACY_RAD,
    small_angle_latency_s=constants.GM_SMALL_ANGLE_LATENCY_S,
    max_beam_diameter_m=constants.GM_MAX_BEAM_DIAMETER_M,
)
