"""Cyclops: an FSO-based wireless link for VR headsets (SIGCOMM 2022).

A full-system reproduction in simulation.  The public API is organized
by layer:

* :mod:`repro.geometry` -- exact 3D geometry (rays, mirrors, SE(3));
* :mod:`repro.optics` -- beams, coupling, transceivers, link budgets;
* :mod:`repro.galvo` -- galvo-mirror hardware (the simulated truth);
* :mod:`repro.vrh` -- headset poses, the built-in tracker, assemblies;
* :mod:`repro.core` -- the paper's contribution: the learned
  tracking-and-pointing pipeline (Sections 4.1-4.3);
* :mod:`repro.link` -- link designs, the FSO channel, link state;
* :mod:`repro.motion` -- stages, hand motion, head traces, speeds;
* :mod:`repro.parallel` -- deterministic chunked process-pool maps;
* :mod:`repro.simulate` -- the testbed and the Section 5 harnesses;
* :mod:`repro.net` -- iperf-style throughput measurement;
* :mod:`repro.baselines` -- alternatives the paper argues against;
* :mod:`repro.stream` -- VR video formats and frame transport;
* :mod:`repro.plan` -- ceiling-TX coverage planning;
* :mod:`repro.analysis` -- closed-form tolerated-speed budgets.

Quick start::

    from repro.simulate import Testbed, PrototypeSession

    testbed = Testbed(seed=7)            # a full simulated prototype
    outcome = testbed.calibrate()        # Sections 4.1 + 4.2
    session = PrototypeSession(testbed, outcome.system)
    result = session.run(profile)        # any pose_at(t) motion
"""

from . import (
    analysis,
    baselines,
    constants,
    core,
    galvo,
    geometry,
    link,
    motion,
    net,
    optics,
    parallel,
    plan,
    reporting,
    simulate,
    stream,
    vrh,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "constants",
    "core",
    "galvo",
    "geometry",
    "link",
    "motion",
    "net",
    "optics",
    "parallel",
    "plan",
    "reporting",
    "simulate",
    "stream",
    "vrh",
    "__version__",
]
