"""Paper-sourced numeric constants, collected in one place.

Every number here is taken directly from the Cyclops paper (SIGCOMM 2022)
or from the datasheets it cites.  Modules import from here rather than
hard-coding magic numbers, so the provenance of each value stays visible.
"""

# --------------------------------------------------------------------------
# Link geometry (Section 5.1: "We have created 10Gbps and 25Gbps links of
# 1.5-2m length"; the trace simulation in Section 5.4 assumes 1.75 m).
# --------------------------------------------------------------------------
LINK_RANGE_MIN_M = 1.5
LINK_RANGE_MAX_M = 2.0
LINK_RANGE_NOMINAL_M = 1.75

# --------------------------------------------------------------------------
# VRH movement requirements (Section 2.2, Fig. 3): during normal use the
# angular and linear speeds of a VRH were at most 19 deg/s and 14 cm/s.
# --------------------------------------------------------------------------
REQUIRED_LINEAR_SPEED_M_S = 0.14
REQUIRED_ANGULAR_SPEED_DEG_S = 19.0

# --------------------------------------------------------------------------
# VRH-T tracking behaviour (Section 5.2): reports every 12-13 ms, except
# 0.7% of the time at 14-15 ms.  Stationary noise over 30 minutes: location
# varied by up to 1.79 mm and orientation by up to 0.41 mrad.
# --------------------------------------------------------------------------
TRACKER_PERIOD_MIN_S = 0.012
TRACKER_PERIOD_MAX_S = 0.013
TRACKER_SLOW_PERIOD_MIN_S = 0.014
TRACKER_SLOW_PERIOD_MAX_S = 0.015
TRACKER_SLOW_FRACTION = 0.007
TRACKER_LOCATION_NOISE_MAX_M = 1.79e-3
TRACKER_ORIENTATION_NOISE_MAX_RAD = 0.41e-3
CONTROL_CHANNEL_LATENCY_S = 0.5e-3  # "< 1 ms latency due to RF control channel"

# --------------------------------------------------------------------------
# Pointing latency (Section 5.2): computation is micro-seconds; mirror
# rotation plus DAC conversion is about 1-2 ms.
# --------------------------------------------------------------------------
POINTING_LATENCY_MIN_S = 1e-3
POINTING_LATENCY_MAX_S = 2e-3

# --------------------------------------------------------------------------
# Galvo mirror (ThorLabs GVS102, Section 5.1): angular accuracy 10 urad,
# small-angle step latency 300 us.  The GVS-series scale factor is
# 0.5 V per degree of optical deflection with a +/-10 V input range.
# --------------------------------------------------------------------------
GM_ANGULAR_ACCURACY_RAD = 10e-6
GM_SMALL_ANGLE_LATENCY_S = 300e-6
GM_VOLTS_PER_OPTICAL_DEGREE = 0.5
GM_VOLTAGE_RANGE_V = 10.0
GM_MAX_BEAM_DIAMETER_M = 10e-3  # "Our GMs allow 10mm beams"

# DAQ (MCC USB-1608G): 16-bit DAC over +/-10 V.
DAQ_BITS = 16
DAQ_VOLTAGE_RANGE_V = 10.0
DAQ_LATENCY_S = 1.0e-3  # dominant part of the 1-2 ms pointing latency

# --------------------------------------------------------------------------
# SFP transceivers.
# 10G: SFP-10G-ZR 1550 nm, TX power 0..4 dBm, RX sensitivity -25 dBm.
# 25G: SFP28 LR, link budget 12-18 dB (the SFP28 ER's 19-25 dB budget is
# unusable because no compatible NIC exists); we model TX 0 dBm and
# sensitivity chosen to give a mid-range 15 dB budget.
# --------------------------------------------------------------------------
SFP_10G_TX_POWER_DBM = 0.0
SFP_10G_RX_SENSITIVITY_DBM = -25.0
SFP_10G_WAVELENGTH_NM = 1550.0
SFP_10G_OPTIMAL_THROUGHPUT_GBPS = 9.4  # observed iperf ceiling (Section 5.3)

SFP_25G_TX_POWER_DBM = 0.0
SFP_25G_RX_SENSITIVITY_DBM = -15.0  # 12-18 dB budget -> model mid-range
SFP_25G_WAVELENGTH_NM = 1310.0
SFP_25G_OPTIMAL_THROUGHPUT_GBPS = 23.5

# Re-acquisition: "once the link is lost, it takes a few seconds to regain
# the link partly due to the SFPs taking a few seconds to report that the
# link is up, after receiving the light".
SFP_RELOCK_DELAY_S = 2.5

# EDFA amplifier gain used to compensate the fiber-coupling loss.
AMPLIFIER_GAIN_DB = 20.0

# Coupling loss of the diverging-beam RX design (Section 5.3: "Our coupling
# loss for the diverging beam is quite high at -30dB").
DIVERGING_COUPLING_LOSS_DB = 30.0

# --------------------------------------------------------------------------
# Link tolerance operating points (Table 1, Fig. 11, Section 5.3.1), used
# only for model calibration and bench assertions -- never inside the TP
# algorithm itself.
# --------------------------------------------------------------------------
COLLIMATED_TX_TOLERANCE_MRAD = 2.00
COLLIMATED_RX_TOLERANCE_MRAD = 2.28
COLLIMATED_PEAK_POWER_DBM = -15.0
DIVERGING_20MM_TX_TOLERANCE_MRAD = 15.81
DIVERGING_20MM_RX_TOLERANCE_MRAD = 5.77
DIVERGING_PEAK_POWER_DBM = -10.0
OPTIMAL_BEAM_DIAMETER_AT_RX_M = 16e-3
RX_TOLERANCE_PEAK_MRAD = 5.77

LINK_25G_RX_ANGULAR_TOLERANCE_MRAD = 8.73  # 0.5 deg
LINK_25G_TX_ANGULAR_TOLERANCE_MRAD = 8.5   # "about 8-9 mrads"
LINK_25G_LINEAR_TOLERANCE_M = 6e-3

# --------------------------------------------------------------------------
# Calibration sample sizes (Sections 4.1-4.2, 5.2).
# --------------------------------------------------------------------------
KSPACE_BOARD_COLUMNS = 20
KSPACE_BOARD_ROWS = 15
KSPACE_CELL_SIZE_M = 0.0254  # 1 inch
KSPACE_BOARD_DISTANCE_M = 1.5
KSPACE_INTERIOR_SAMPLES = 266  # 19 x 14 interior grid intersections
MAPPING_TRAINING_SAMPLES = 30

# --------------------------------------------------------------------------
# Table 2: model-estimation errors, used for bench assertions and as the
# TP residual error injected by the Section 5.4 trace simulation.
# --------------------------------------------------------------------------
TABLE2_STAGE1_TX_AVG_MM = 1.24
TABLE2_STAGE1_RX_AVG_MM = 1.90
TABLE2_COMBINED_TX_AVG_MM = 2.18
TABLE2_COMBINED_RX_AVG_MM = 4.54
TABLE2_COMBINED_RX_MAX_MM = 6.50

# Section 5.4 simulation parameters.
TRACE_SLOT_S = 1e-3
TRACE_REPORT_PERIOD_S = 10e-3
TRACE_TP_LATERAL_ERROR_M = 4.54e-3
TRACE_TP_ANGULAR_ERROR_RAD = 4.54e-3 / 1.75  # ~2.59 mrad at 1.75 m
TRACE_COUNT = 500
TRACE_DURATION_S = 60.0
TRACE_FRAME_SLOTS = 30

# Observed tolerated speeds (Table 3), for bench shape assertions only.
TABLE3_10G_PURE_LINEAR_CM_S = 33.0
TABLE3_10G_PURE_ANGULAR_DEG_S = 17.0
TABLE3_10G_MIXED_LINEAR_CM_S = 30.0
TABLE3_10G_MIXED_ANGULAR_DEG_S = 16.0
TABLE3_25G_PURE_LINEAR_CM_S = 25.0
TABLE3_25G_PURE_ANGULAR_DEG_S = 25.0
TABLE3_25G_MIXED_LINEAR_CM_S = 15.0
TABLE3_25G_MIXED_ANGULAR_DEG_S = 17.5
