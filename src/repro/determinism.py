"""The repo's determinism contract, in executable form.

Every stochastic component takes its randomness from an explicit
``numpy.random.Generator`` (or an explicit integer seed) threaded in by
its caller.  Nothing in ``src/repro`` may mint a generator from OS
entropy unless the caller *documents* that choice by passing
``deterministic=False`` -- the escape hatch for interactive
exploration, never for pipelines that produce artifacts.

``python -m repro lint`` (rules D001-D004) enforces the contract
statically; this module is the one sanctioned runtime implementation
of it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, TypeVar

import numpy as np

_F = TypeVar("_F", bound=Callable[..., Any])

_KERNEL_REGISTRY: Dict[str, Callable[..., Any]] = {}


def resolve_rng(rng: Optional[np.random.Generator] = None,
                seed: Optional[int] = None,
                deterministic: bool = True,
                owner: str = "component") -> np.random.Generator:
    """Resolve the (rng, seed, deterministic) triple to a Generator.

    Precedence: an explicit ``rng`` wins; else ``seed`` builds one;
    else ``deterministic=False`` opts into OS entropy.  With neither an
    rng, a seed, nor the opt-in, raises ``ValueError`` -- silently
    nondeterministic components are how byte-identical-per-seed
    pipelines rot.
    """
    if rng is not None:
        return rng
    if seed is not None:
        return np.random.default_rng(seed)
    if deterministic:
        raise ValueError(
            f"{owner} needs an explicit rng=np.random.Generator or "
            f"seed=int; pass deterministic=False to opt into an "
            f"OS-entropy generator (irreproducible runs)")
    # The documented opt-in: the caller asked for fresh entropy.
    return np.random.default_rng()  # repro: noqa[D001]


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from a parent.

    The sanctioned way to hand sub-components their own streams
    without correlating draws or sharing mutable state.
    """
    return np.random.default_rng(rng.integers(2 ** 63))


def derive(*keys: int) -> np.random.Generator:
    """Deterministic generator keyed by a tuple of integers.

    The sanctioned way to give each item of a structured sweep its own
    independent stream (``derive(seed, viewer, video)``): the keys feed
    a ``SeedSequence``, so the stream depends on the whole tuple and
    regenerating any single item needs no global draw order.
    """
    return np.random.default_rng(np.random.SeedSequence(list(keys)))


def kernel(fn: _F) -> _F:
    """Register a function as a compiled-kernel candidate.

    Registration is a *contract*, not a transformation: the function
    is returned unchanged (so it stays picklable for the shm workers)
    but is recorded in the kernel registry, and ``python -m repro
    analyze`` proves it — and everything it transitively calls — stays
    inside the nopython-safe subset (rules K001-K003: no dict/set/
    object dtypes, no mutable module state, no ``*args``/``**kwargs``,
    no concatenation-grown outputs).  A future numba/CuPy backend can
    then compile every registered kernel without a semantics audit.
    """
    _KERNEL_REGISTRY[f"{fn.__module__}.{fn.__qualname__}"] = fn
    return fn


def registered_kernels() -> Dict[str, Callable[..., Any]]:
    """A snapshot of every kernel registered so far, by dotted name."""
    return dict(_KERNEL_REGISTRY)
