"""Packet-level ARQ over the slotted link (the Section 5.4 claim).

"Note that each timeslot (being 1 ms) can transmit multiple data
packets on a 25Gbps link; thus, a network protocol would be able to
provide an effective bandwidth of about 23Gbps (98.6% of 23.5Gbps)
for the traces."  This module checks that claim with an actual
stop-and-wait-free sliding sender: packets sent during off-slots are
lost and retransmitted after a timeout, and goodput is measured at the
receiver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: A jumbo-frame-ish packet, in bits (9 KB).
DEFAULT_PACKET_BITS = 9000 * 8


@dataclass(frozen=True)
class ArqResult:
    """Receiver-side accounting of one replay."""

    delivered_packets: int
    transmissions: int
    duration_s: float
    packet_bits: int

    @property
    def goodput_gbps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return (self.delivered_packets * self.packet_bits
                / self.duration_s / 1e9)

    @property
    def retransmission_fraction(self) -> float:
        if self.transmissions == 0:
            return 0.0
        return 1.0 - self.delivered_packets / self.transmissions


def run_arq(link_up: np.ndarray, slot_s: float, line_rate_gbps: float,
            packet_bits: int = DEFAULT_PACKET_BITS,
            feedback_delay_slots: int = 1) -> ArqResult:
    """Send greedily over a slotted link with loss-triggered resends.

    Per slot the sender emits ``line_rate * slot / packet_bits``
    packets.  Packets launched during an off-slot are lost; the loss
    is known ``feedback_delay_slots`` later (the RTT of a 2 m link is
    nanoseconds, so one slot is generous), at which point the packets
    re-enter the send queue ahead of new data.  Delivered count is
    unique packets; goodput is their rate.
    """
    if slot_s <= 0 or line_rate_gbps <= 0 or packet_bits <= 0:
        raise ValueError("slot, rate, and packet size must be positive")
    if feedback_delay_slots < 0:
        raise ValueError("feedback delay cannot be negative")
    packets_per_slot = line_rate_gbps * 1e9 * slot_s / packet_bits
    if packets_per_slot < 1:
        raise ValueError("a slot must fit at least one packet")
    per_slot = int(packets_per_slot)

    delivered = 0
    transmissions = 0
    retransmit_queue = 0   # packets known lost, awaiting resend
    in_flight_losses = []  # (reveal_slot, count)
    for slot, up in enumerate(np.asarray(link_up, dtype=bool)):
        # Losses from earlier slots become known.
        while in_flight_losses and in_flight_losses[0][0] <= slot:
            retransmit_queue += in_flight_losses.pop(0)[1]
        sent = per_slot
        transmissions += sent
        resends = min(retransmit_queue, sent)
        retransmit_queue -= resends
        if up:
            delivered += sent
        else:
            in_flight_losses.append(
                (slot + 1 + feedback_delay_slots, sent))
    return ArqResult(delivered_packets=delivered,
                     transmissions=transmissions,
                     duration_s=len(link_up) * slot_s,
                     packet_bits=packet_bits)
