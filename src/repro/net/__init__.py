"""Network-measurement substrate: iperf-style metering and ARQ."""

from .arq import DEFAULT_PACKET_BITS, ArqResult, run_arq
from .iperf import ThroughputMeter, ThroughputWindow

__all__ = [
    "ArqResult",
    "DEFAULT_PACKET_BITS",
    "ThroughputMeter",
    "ThroughputWindow",
    "run_arq",
]
