"""Windowed throughput measurement (the simulator's iperf).

The paper measures "average throughput (using iperf)" in 50 ms windows
while the RX moves.  :class:`ThroughputMeter` reproduces that: it is
fed (time, link-up) samples from the session simulator and reports the
achieved goodput per window -- line-rate-limited when the link is up,
zero when it is down or re-locking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class ThroughputWindow:
    """One measurement window."""

    center_s: float
    throughput_gbps: float
    uptime_fraction: float


@dataclass
class ThroughputMeter:
    """Accumulates link-state samples into fixed windows."""

    optimal_throughput_gbps: float
    window_s: float = 0.05

    def __post_init__(self):
        if self.optimal_throughput_gbps <= 0:
            raise ValueError("optimal throughput must be positive")
        if self.window_s <= 0:
            raise ValueError("window must be positive")
        self._windows: List[ThroughputWindow] = []
        self._current_index = 0
        self._up_time = 0.0
        self._total_time = 0.0

    def record(self, time_s: float, link_up: bool, dt_s: float) -> None:
        """Feed one simulation step of length ``dt_s`` ending at
        ``time_s``."""
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        # A sample *ending* at time_s covers (time_s - dt, time_s]; it
        # belongs to the window containing its start, so a sample that
        # ends exactly on a boundary does not open the next window.
        index = int((time_s - dt_s) / self.window_s + 1e-12)
        while index > self._current_index:
            self._flush()
        self._total_time += dt_s
        if link_up:
            self._up_time += dt_s

    def _flush(self) -> None:
        """Close the current window and start the next."""
        center = (self._current_index + 0.5) * self.window_s
        if self._total_time > 0:
            fraction = min(self._up_time / self._total_time, 1.0)
        else:
            fraction = 0.0
        self._windows.append(ThroughputWindow(
            center_s=center,
            throughput_gbps=fraction * self.optimal_throughput_gbps,
            uptime_fraction=fraction))
        self._current_index += 1
        self._up_time = 0.0
        self._total_time = 0.0

    def finish(self) -> List[ThroughputWindow]:
        """Close the last window and return all of them."""
        if self._total_time > 0:
            self._flush()
        return list(self._windows)

    def throughputs(self) -> np.ndarray:
        """Per-window goodput of all *closed* windows."""
        return np.array([w.throughput_gbps for w in self._windows])
