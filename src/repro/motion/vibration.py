"""Vibration overlay: high-frequency pose jitter on any motion.

The Cyclops authors' earlier work ([33], "Handling rack vibrations in
FSO-based data center architectures") studied exactly this failure
mode; a VR deployment sees it too -- a wobbling ceiling mount, a
head-strap resonance, footsteps.  The overlay adds band-limited
sinusoidal jitter to a base profile so the session simulator can ask:
up to what amplitude and frequency does the TP loop cope?

The physics to expect: vibration slower than the ~80 Hz tracking rate
is just motion -- the TP corrects it; vibration near or above it
aliases into uncorrectable misalignment, and only the link's raw
movement tolerance absorbs it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..determinism import resolve_rng
from ..geometry import rotation_matrix
from ..vrh import Pose


@dataclass
class VibrationOverlay:
    """A base profile plus sinusoidal linear/angular jitter.

    ``linear_amplitude_m`` / ``angular_amplitude_rad`` are per-axis
    peak amplitudes; all six axes share ``frequency_hz`` with random
    (seeded) phases, which makes the jitter elliptical rather than a
    degenerate line.
    """

    base: object
    frequency_hz: float
    linear_amplitude_m: float = 0.0
    angular_amplitude_rad: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.frequency_hz <= 0:
            raise ValueError("vibration frequency must be positive")
        if self.linear_amplitude_m < 0 or self.angular_amplitude_rad < 0:
            raise ValueError("amplitudes cannot be negative")
        rng = resolve_rng(seed=self.seed, owner="VibrationOverlay")
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=6)

    @property
    def duration_s(self) -> float:
        return self.base.duration_s

    def pose_at(self, t_s: float) -> Pose:
        base = self.base.pose_at(t_s)
        omega = 2.0 * np.pi * self.frequency_hz
        waves = np.sin(omega * t_s + self._phases)
        offset = self.linear_amplitude_m * waves[:3]
        tilt = self.angular_amplitude_rad * waves[3:]
        angle = float(np.linalg.norm(tilt))
        if angle > 1e-15:
            wobble = rotation_matrix(tilt / angle, angle)
        else:
            wobble = np.eye(3)
        return Pose(base.position + offset,
                    wobble @ base.orientation)

    def peak_angular_speed_rad_s(self) -> float:
        """Worst-case angular rate of the jitter alone."""
        return (2.0 * np.pi * self.frequency_hz
                * self.angular_amplitude_rad * np.sqrt(3.0))

    def peak_linear_speed_m_s(self) -> float:
        """Worst-case linear rate of the jitter alone."""
        return (2.0 * np.pi * self.frequency_hz
                * self.linear_amplitude_m * np.sqrt(3.0))
