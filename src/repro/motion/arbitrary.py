"""Hand-held arbitrary motion (Fig. 12c / Fig. 14).

For the user study the RX assembly is detached from the stages and
moved around by hand: simultaneous, smoothly varying linear and angular
motion.  We synthesize it as band-limited sums of sinusoids (hand
motion lives below ~2 Hz) whose amplitudes ramp up over the run, so one
profile sweeps the whole speed range just like the paper's gradually
more vigorous waving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..determinism import resolve_rng
from ..geometry import rotation_matrix
from ..vrh import Pose

#: Hand-motion band: component frequencies drawn from this range (Hz).
FREQUENCY_BAND_HZ = (0.25, 1.8)

#: Number of sinusoid components per axis.
COMPONENTS = 3


def _component_set(rng: np.random.Generator) -> tuple:
    """Random frequencies (rad/s) and phases for one axis."""
    freqs = 2.0 * np.pi * rng.uniform(*FREQUENCY_BAND_HZ, size=COMPONENTS)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=COMPONENTS)
    weights = rng.uniform(0.5, 1.0, size=COMPONENTS)
    # Normalize so the worst-case speed (sum of |A w|) is exactly 1.
    weights /= float(np.sum(weights * freqs))
    return freqs, phases, weights


@dataclass
class HandheldProfile:
    """Mixed linear + angular motion with ramping intensity.

    ``peak_linear_m_s`` and ``peak_angular_rad_s`` are the speeds
    reached at the *end* of the run; intensity ramps linearly from
    ``ramp_start_fraction`` of them.
    """

    base_pose: Pose
    peak_linear_m_s: float
    peak_angular_rad_s: float
    duration_s: float = 60.0
    ramp_start_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.peak_linear_m_s < 0 or self.peak_angular_rad_s < 0:
            raise ValueError("peak speeds cannot be negative")
        if not 0.0 <= self.ramp_start_fraction <= 1.0:
            raise ValueError("ramp start fraction must be in [0, 1]")
        rng = resolve_rng(seed=self.seed, owner="HandheldProfile")
        self._position_axes = [_component_set(rng) for _ in range(3)]
        self._rotation_axes = [_component_set(rng) for _ in range(3)]

    def _intensity(self, t_s: float) -> float:
        """Ramp factor in [ramp_start_fraction, 1]."""
        fraction = min(max(t_s / self.duration_s, 0.0), 1.0)
        start = self.ramp_start_fraction
        return start + (1.0 - start) * fraction

    @staticmethod
    def _evaluate(components, t_s: float) -> float:
        """One axis's unit-speed displacement at time ``t_s``."""
        freqs, phases, weights = components
        return float(np.sum(weights * np.sin(freqs * t_s + phases)))

    def pose_at(self, t_s: float) -> Pose:
        intensity = self._intensity(t_s)
        offset = np.array([
            self._evaluate(axis, t_s) for axis in self._position_axes])
        rotation_vector = np.array([
            self._evaluate(axis, t_s) for axis in self._rotation_axes])
        # Each axis is unit-peak-speed; dividing by sqrt(3) bounds the
        # *vector* speed by the requested peak.
        offset *= intensity * self.peak_linear_m_s / math.sqrt(3.0)
        rotation_vector *= (intensity * self.peak_angular_rad_s
                            / math.sqrt(3.0))
        angle = float(np.linalg.norm(rotation_vector))
        if angle > 1e-12:
            wobble = rotation_matrix(rotation_vector / angle, angle)
        else:
            wobble = np.eye(3)
        return Pose(self.base_pose.position + offset,
                    wobble @ self.base_pose.orientation)
