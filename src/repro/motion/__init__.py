"""Motion substrate: stages, profiles, hand motion, traces, speeds."""

from .arbitrary import HandheldProfile
from .profiles import (
    AngularStrokeProfile,
    LinearStrokeProfile,
    StaticProfile,
    StrokeSchedule,
)
from .rail import LinearRail
from .rotation_stage import RotationStage
from .vibration import VibrationOverlay
from .speeds import SpeedSeries, cdf, measure_profile, measure_trace, percentile
from .traces import (
    NORMAL_USE,
    VIDEO_360,
    HeadTrace,
    TraceProfile,
    generate_dataset,
    generate_trace,
    resample_trace,
)
from .batch import TraceBatch, generate_batch

__all__ = [
    "AngularStrokeProfile",
    "HandheldProfile",
    "HeadTrace",
    "LinearRail",
    "LinearStrokeProfile",
    "NORMAL_USE",
    "RotationStage",
    "SpeedSeries",
    "StaticProfile",
    "StrokeSchedule",
    "TraceBatch",
    "TraceProfile",
    "VibrationOverlay",
    "VIDEO_360",
    "cdf",
    "generate_batch",
    "generate_dataset",
    "generate_trace",
    "resample_trace",
    "measure_profile",
    "measure_trace",
    "percentile",
]
