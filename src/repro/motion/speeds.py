"""Speed measurement and CDFs (Fig. 3, and the x-axes of Figs. 13-15).

The paper characterizes motion by linear and angular speeds measured
over short windows (it plots 50 ms windows for the throughput figures).
These helpers turn any motion profile or trace into windowed speed
series and empirical CDFs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..vrh import speeds_between


@dataclass(frozen=True)
class SpeedSeries:
    """Windowed speeds of one motion: parallel time/speed arrays."""

    times_s: np.ndarray
    linear_m_s: np.ndarray
    angular_rad_s: np.ndarray

    @property
    def angular_deg_s(self) -> np.ndarray:
        return np.degrees(self.angular_rad_s)


def measure_profile(profile, window_s: float = 0.05,
                    duration_s: float = None) -> SpeedSeries:
    """Windowed speeds of a ``pose_at(t)`` motion profile."""
    if duration_s is None:
        duration_s = profile.duration_s
    if window_s <= 0 or duration_s <= window_s:
        raise ValueError("need a positive window shorter than the run")
    edges = np.arange(0.0, duration_s, window_s)
    times, linear, angular = [], [], []
    previous = profile.pose_at(0.0)
    for edge in edges[1:]:
        current = profile.pose_at(float(edge))
        lin, ang = speeds_between(previous, current, window_s)
        times.append(edge - window_s / 2.0)
        linear.append(lin)
        angular.append(ang)
        previous = current
    return SpeedSeries(times_s=np.array(times),
                       linear_m_s=np.array(linear),
                       angular_rad_s=np.array(angular))


def measure_trace(trace, window_s: float = 0.05) -> SpeedSeries:
    """Windowed speeds of a :class:`repro.motion.HeadTrace`.

    Uses the trace's exact per-step motion magnitudes, aggregated into
    windows (path length over window duration).
    """
    steps_per_window = max(int(round(window_s / trace.dt_s)), 1)
    n_windows = len(trace.step_linear_m) // steps_per_window
    if n_windows == 0:
        raise ValueError("trace shorter than one window")
    used = n_windows * steps_per_window
    linear = trace.step_linear_m[:used].reshape(n_windows, -1).sum(axis=1)
    angular = trace.step_angular_rad[:used].reshape(n_windows, -1).sum(axis=1)
    window = steps_per_window * trace.dt_s
    times = (np.arange(n_windows) + 0.5) * window
    return SpeedSeries(times_s=times, linear_m_s=linear / window,
                       angular_rad_s=angular / window)


def cdf(values) -> tuple:
    """Empirical CDF: returns ``(sorted_values, cumulative_fraction)``."""
    data = np.sort(np.asarray(values, dtype=float))
    if data.size == 0:
        raise ValueError("cannot build a CDF from no data")
    fractions = np.arange(1, data.size + 1) / data.size
    return data, fractions


def percentile(values, q: float) -> float:
    """Convenience percentile (q in [0, 100])."""
    return float(np.percentile(np.asarray(values, dtype=float), q))
