"""The rotation stage (Fig. 12b): pure-angular-motion test fixture."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry import normalize
from ..vrh import Pose
from .profiles import AngularStrokeProfile, StrokeSchedule


@dataclass(frozen=True)
class RotationStage:
    """A stage rotating the breadboard about a (vertical) axis.

    The rail carriage is locked, so position never changes; strokes
    sweep +/- half the range about the mounted orientation.
    """

    axis: np.ndarray
    range_rad: float = math.radians(30.0)

    def __post_init__(self):
        object.__setattr__(self, "axis", normalize(self.axis))
        if self.range_rad <= 0:
            raise ValueError("rotation range must be positive")

    def stroke_profile(self, center_pose: Pose,
                       speeds_rad_s: Sequence[float],
                       rest_s: float = 0.25) -> AngularStrokeProfile:
        """Back-and-forth angular strokes around the center pose."""
        schedule = StrokeSchedule(extent=self.range_rad,
                                  speeds=list(speeds_rad_s), rest_s=rest_s)
        return AngularStrokeProfile(base_pose=center_pose,
                                    axis=np.array(self.axis),
                                    schedule=schedule)
