"""Motion profiles: pose-vs-time trajectories for the evaluations.

A *profile* is any object with ``pose_at(t_s) -> Pose`` and a
``duration_s``.  The Section 5.3 experiments use three kinds: pure
linear strokes on a rail, pure angular strokes on a rotation stage, and
hand-held arbitrary motion; all are built on the primitives here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..geometry import normalize, rotation_matrix
from ..vrh import Pose


@dataclass(frozen=True)
class StaticProfile:
    """No motion at all -- baseline and test fixture."""

    pose: Pose
    duration_s: float = 60.0

    def pose_at(self, t_s: float) -> Pose:
        return self.pose


@dataclass
class StrokeSchedule:
    """Piecewise back-and-forth strokes with per-stroke speeds.

    Models the paper's procedure: "moved continuously from one end
    ... to the other in a single smooth stroke", a momentary rest to
    turn around, then the next stroke, "with gradually increasing
    stroke speeds".  Works for both linear (meters) and angular
    (radians) strokes; ``extent`` and ``speeds`` share units.
    """

    extent: float
    speeds: Sequence[float]
    rest_s: float = 0.25

    def __post_init__(self):
        if self.extent <= 0:
            raise ValueError("stroke extent must be positive")
        if not self.speeds or any(s <= 0 for s in self.speeds):
            raise ValueError("stroke speeds must be positive")
        # Precompute segment boundaries: (start, duration, origin-side,
        # speed); each listed speed gets one out-stroke and one back.
        self._segments: List[tuple] = []
        t = 0.0
        side = 0.0  # current end: 0 = start of travel, 1 = far end
        for speed in self.speeds:
            for _ in range(2):
                duration = self.extent / speed
                self._segments.append((t, duration, side, speed))
                t += duration + self.rest_s
                side = 1.0 - side
        self._duration = t

    @property
    def duration_s(self) -> float:
        """Total schedule duration including rests."""
        return self._duration

    def offset_at(self, t_s: float) -> float:
        """Displacement from the travel start at time ``t_s``.

        Clamps outside the schedule (at rest at whichever end).
        """
        if t_s <= 0:
            return 0.0
        last_end = 0.0
        for start, duration, side, speed in self._segments:
            if t_s < start:
                return last_end
            if t_s <= start + duration:
                travelled = speed * (t_s - start)
                if side == 0.0:
                    return min(travelled, self.extent)
                return max(self.extent - travelled, 0.0)
            last_end = self.extent if side == 0.0 else 0.0
        return last_end

    def speed_at(self, t_s: float) -> float:
        """Instantaneous speed magnitude at ``t_s`` (0 during rests)."""
        for start, duration, _, speed in self._segments:
            if start <= t_s <= start + duration:
                return speed
        return 0.0


@dataclass
class LinearStrokeProfile:
    """Pure linear motion along a rail axis (Fig. 13 top)."""

    base_pose: Pose
    axis: np.ndarray
    schedule: StrokeSchedule

    def __post_init__(self):
        self.axis = normalize(self.axis)

    @property
    def duration_s(self) -> float:
        return self.schedule.duration_s

    def pose_at(self, t_s: float) -> Pose:
        offset = self.schedule.offset_at(t_s)
        return Pose(self.base_pose.position + offset * self.axis,
                    self.base_pose.orientation)


@dataclass
class AngularStrokeProfile:
    """Pure angular motion about a rotation-stage axis (Fig. 13 bottom).

    The stage rotates the whole RX assembly about a vertical axis
    through the platform center; strokes sweep symmetrically around
    the base orientation.
    """

    base_pose: Pose
    axis: np.ndarray
    schedule: StrokeSchedule

    def __post_init__(self):
        self.axis = normalize(self.axis)

    @property
    def duration_s(self) -> float:
        return self.schedule.duration_s

    def pose_at(self, t_s: float) -> Pose:
        # Center the sweep: offset in [0, extent] -> angle in
        # [-extent/2, +extent/2].
        angle = self.schedule.offset_at(t_s) - self.schedule.extent / 2.0
        rotation = rotation_matrix(self.axis, angle)
        return Pose(self.base_pose.position,
                    rotation @ self.base_pose.orientation)
