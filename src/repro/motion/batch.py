"""Batched trace generation: the whole corpus as one tensor.

``generate_trace`` builds one trace at a time; at dataset scale the
per-trace Python and small-array overhead dominates.  This module
generates the *entire corpus in one pass*: every per-trace random
stream is drawn exactly as ``generate_trace`` draws it (same
``derive(seed, viewer, video)`` generator, same call order, so the
output is byte-identical per seed), but the filtering, integration
and norm stages run once over ``(traces, 3, samples)`` tensors instead
of thousands of times over ``(samples,)`` vectors.

Layout: tensors are *axis-major* — ``(T, 3, n)`` with time contiguous
— because every heavy stage (``lfilter``, ``cumsum``, ``diff``) walks
the time axis.  :meth:`TraceBatch.trace` exposes the familiar
``(n, 3)`` per-trace view by transposition (a zero-copy view).

The equality oracle is the per-trace path: the property tests assert
``generate_batch(...)`` reproduces ``generate_trace(...)`` element
for element, bit for bit, for every (viewer, video).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import constants
from ..determinism import derive, kernel
from ..parallel import parallel_map_arrays
from ..store import ColumnGroup, ColumnStore
from .traces import VIDEO_360, HeadTrace, TraceProfile, _lfilter


@dataclass
class TraceBatch:
    """A trace corpus as column tensors (one row per trace).

    ``positions`` / ``eulers`` are optional: the Section 5.4 slot
    pipeline consumes only the step-magnitude columns, so
    ``generate_batch(columns="steps")`` skips materializing the pose
    tensors for throughput work.  When present they are axis-major
    ``(T, 3, n)``; :meth:`trace` transposes back to ``(n, 3)`` views.
    """

    viewer_ids: np.ndarray          # (T,) int
    video_ids: np.ndarray           # (T,) int
    dt_s: float
    step_linear_m: np.ndarray       # (T, n - 1)
    step_angular_rad: np.ndarray    # (T, n - 1)
    positions: Optional[np.ndarray] = None   # (T, 3, n)
    eulers: Optional[np.ndarray] = None      # (T, 3, n)

    def __post_init__(self) -> None:
        t = len(self.viewer_ids)
        shapes = [len(self.video_ids), self.step_linear_m.shape[0],
                  self.step_angular_rad.shape[0]]
        if self.positions is not None:
            shapes.append(self.positions.shape[0])
        if self.eulers is not None:
            shapes.append(self.eulers.shape[0])
        if any(s != t for s in shapes):
            raise ValueError("batch columns have inconsistent trace "
                             "counts")
        if self.step_linear_m.shape != self.step_angular_rad.shape:
            raise ValueError("step columns have inconsistent shapes")

    def __len__(self) -> int:
        return len(self.viewer_ids)

    @property
    def steps(self) -> int:
        """Report intervals per trace (slot kernel input length)."""
        return int(self.step_linear_m.shape[1])

    @property
    def samples(self) -> int:
        return self.steps + 1

    @property
    def has_pose(self) -> bool:
        return self.positions is not None and self.eulers is not None

    def trace(self, index: int) -> HeadTrace:
        """One trace as a zero-copy :class:`HeadTrace` view."""
        if not self.has_pose:
            raise ValueError(
                "steps-only batch (columns='steps') carries no pose "
                "tensors; regenerate with columns='full' to extract "
                "HeadTrace objects")
        assert self.positions is not None and self.eulers is not None
        return HeadTrace(
            viewer=int(self.viewer_ids[index]),
            video=int(self.video_ids[index]),
            dt_s=self.dt_s,
            positions=self.positions[index].T,
            eulers=self.eulers[index].T,
            step_linear_m=self.step_linear_m[index],
            step_angular_rad=self.step_angular_rad[index])

    def traces(self) -> List[HeadTrace]:
        """Every trace as zero-copy views (same order as generation)."""
        return [self.trace(index) for index in range(len(self))]

    @classmethod
    def from_traces(cls, traces: Sequence[HeadTrace],
                    columns: str = "full") -> "TraceBatch":
        """Stack uniform per-trace objects into one batch (copies).

        ``columns="steps"`` stacks only the step-magnitude columns —
        what the slot pipeline consumes — skipping the (much larger)
        pose tensors.
        """
        if columns not in ("full", "steps"):
            raise ValueError("columns must be 'full' or 'steps'")
        if not traces:
            raise ValueError("cannot batch an empty trace list")
        dt_s = traces[0].dt_s
        samples = traces[0].samples
        for trace in traces:
            if trace.dt_s != dt_s or trace.samples != samples:
                raise ValueError(
                    "traces are not uniform (dt_s / length); the batch "
                    "engine needs a rectangular corpus")
        with_pose = columns == "full"
        return cls(
            viewer_ids=np.array([t.viewer for t in traces],
                                dtype=np.int64),
            video_ids=np.array([t.video for t in traces],
                               dtype=np.int64),
            dt_s=dt_s,
            step_linear_m=np.stack([t.step_linear_m for t in traces]),
            step_angular_rad=np.stack(
                [t.step_angular_rad for t in traces]),
            positions=np.stack([np.asarray(t.positions).T
                                for t in traces]) if with_pose else None,
            eulers=np.stack([np.asarray(t.eulers).T
                             for t in traces]) if with_pose else None,
        )

    # -- columnar store integration --------------------------------------

    def columns(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {
            "viewer_ids": np.asarray(self.viewer_ids),
            "video_ids": np.asarray(self.video_ids),
            "step_linear_m": self.step_linear_m,
            "step_angular_rad": self.step_angular_rad,
        }
        if self.positions is not None:
            out["positions"] = self.positions
        if self.eulers is not None:
            out["eulers"] = self.eulers
        return out

    def save(self, store: ColumnStore, group: str = "traces",
             attrs: Optional[dict] = None) -> ColumnGroup:
        """Persist the corpus as a column group."""
        merged = {"dt_s": self.dt_s, "kind": "trace-batch"}
        merged.update(attrs or {})
        return store.write_group(group, self.columns(), attrs=merged)

    @classmethod
    def load(cls, store: ColumnStore, group: str = "traces",
             mmap: bool = True) -> "TraceBatch":
        """Open a persisted corpus; columns stay memmapped (lazy)."""
        g = store.read_group(group, mmap=mmap)
        return cls(
            viewer_ids=g["viewer_ids"],
            video_ids=g["video_ids"],
            dt_s=float(g.attrs["dt_s"]),
            step_linear_m=g["step_linear_m"],
            step_angular_rad=g["step_angular_rad"],
            positions=g["positions"] if "positions" in g else None,
            eulers=g["eulers"] if "eulers" in g else None,
        )


def _draw_streams(ids: Sequence[Tuple[int, int]], profile: TraceProfile,
                  n: int, dt_s: float, seed: int
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                             np.ndarray, List[Tuple[int, int, int,
                                                    float]]]:
    """Consume every per-trace random stream, in generate_trace order.

    Returns the raw normal tensors plus per-trace sigmas and the
    saccade burst list.  This is the only per-trace loop left in the
    batch engine; everything after it is one tensor pass.
    """
    t_count = len(ids)
    z_ang = np.empty((t_count, 3, n), dtype=np.float64)
    z_vel = np.empty((t_count, 3, n), dtype=np.float64)
    sigma_ang = np.empty((t_count, 3), dtype=np.float64)
    sigma_vel = np.empty(t_count, dtype=np.float64)
    bursts: List[Tuple[int, int, int, float]] = []
    saccades_on = profile.saccade_rate_hz > 0
    expected = profile.saccade_rate_hz * n * dt_s
    for t, (viewer, video) in enumerate(ids):
        rng = derive(seed, viewer, video)
        viewer_activity = rng.lognormal(0.0, profile.activity_sigma)
        video_activity = rng.lognormal(0.0, profile.activity_sigma)
        activity = min(viewer_activity * video_activity,
                       profile.activity_cap)
        wander = math.radians(profile.wander_speed_deg_s) * activity
        sigma_ang[t, 0] = wander          # yaw (drawn first)
        sigma_ang[t, 1] = wander * 0.45   # pitch
        sigma_ang[t, 2] = wander * 0.2    # roll
        # One (3, n) fill consumes the identical ziggurat stream three
        # sequential standard_normal(n) calls would.
        rng.standard_normal(out=z_ang[t])
        peak = math.radians(profile.saccade_peak_deg_s) * activity
        if saccades_on and peak > 0:
            for _ in range(rng.poisson(expected)):
                center = int(rng.integers(0, n))
                duration_s = rng.uniform(0.15, 0.45)
                width = max(int(duration_s / dt_s), 2)
                magnitude = (peak * rng.lognormal(0.0, 0.4)
                             * rng.choice([-1.0, 1.0]))
                bursts.append((t, center, width, magnitude))
        sigma_vel[t] = profile.sway_speed_m_s * activity
        rng.standard_normal(out=z_vel[t])
    return z_ang, z_vel, sigma_ang, sigma_vel, bursts


@kernel
def _ou_filter(z: np.ndarray, sigma: np.ndarray, dt_s: float,
               tau: float) -> np.ndarray:
    """Batched stationary-start OU: AR(1) over the last axis.

    Scales ``z`` in place (it is scratch) and runs one ``lfilter``
    pass; per-row arithmetic matches ``_ou_series`` exactly.
    """
    decay = math.exp(-dt_s / tau)
    innovation = sigma * math.sqrt(max(1.0 - decay * decay, 1e-12))
    first = sigma * z[..., 0]
    np.multiply(z, innovation[..., None], out=z)
    z[..., 0] = first
    if _lfilter is None:  # pragma: no cover - exercised only w/o scipy
        out = np.empty_like(z)
        out[..., 0] = z[..., 0]
        for i in range(1, z.shape[-1]):
            out[..., i] = decay * out[..., i - 1] + z[..., i]
        return out
    return _lfilter([1.0], [1.0, -decay], z, axis=-1)


def _deposit_saccades(shape: Tuple[int, int],
                      bursts: List[Tuple[int, int, int, float]]
                      ) -> Optional[np.ndarray]:
    """All burst kernels scattered into one (T, n) tensor."""
    if not bursts:
        return None
    t_count, n = shape
    series = np.zeros(shape, dtype=np.float64)
    flat = series.reshape(-1)
    spans = [(t * n + max(c - w, 0), t * n + min(c + w, n))
             for t, c, w, _ in bursts]
    indices = np.concatenate([np.arange(lo, hi) for lo, hi in spans])
    deposits = np.concatenate([
        m * np.exp(-0.5 * ((np.arange(max(c - w, 0), min(c + w, n)) - c)
                           / (w / 2.5)) ** 2)
        for (_, c, w, m) in bursts])
    np.add.at(flat, indices, deposits)
    return series


def _norm3_steps(x: np.ndarray) -> np.ndarray:
    """``np.linalg.norm(x, axis=...)`` over the 3-axis, bit-for-bit.

    ``norm`` reduces the squared components sequentially; for three
    terms that is ``(a + b) + c``, reproduced here explicitly so the
    big intermediate tensors never materialize.
    """
    acc = x[:, 0, :] * x[:, 0, :]
    acc += x[:, 1, :] * x[:, 1, :]
    acc += x[:, 2, :] * x[:, 2, :]
    return np.sqrt(acc, out=acc)


def _generate_columns(ids: Sequence[Tuple[int, int]],
                      profile: TraceProfile, duration_s: float,
                      dt_s: float, seed: int,
                      with_pose: bool) -> Dict[str, np.ndarray]:
    """The tensor pass: every column for a chunk of (viewer, video)."""
    n = int(round(duration_s / dt_s)) + 1
    z_ang, z_vel, sigma_ang, sigma_vel, bursts = _draw_streams(
        ids, profile, n, dt_s, seed)

    omega = _ou_filter(z_ang, sigma_ang, dt_s, 0.8)  # rows: yaw,pitch,roll
    saccades = _deposit_saccades((len(ids), n), bursts)
    if saccades is not None:
        omega[:, 0, :] += saccades
    velocity = _ou_filter(
        z_vel, np.broadcast_to(sigma_vel[:, None], (len(ids), 3)).copy(),
        dt_s, 1.2)
    velocity[:, 2, :] *= 0.4  # vertical sway is smaller

    # step_angular reduces (roll^2 + pitch^2) + yaw^2 — the column
    # order the per-trace omega matrix feeds to np.linalg.norm.
    ordered = omega[:, ::-1, :]  # rows: roll, pitch, yaw (view)
    step_angular = _norm3_steps(ordered[:, :, 1:]) * dt_s

    np.multiply(velocity, dt_s, out=velocity)
    positions = np.cumsum(velocity, axis=-1, out=velocity)
    positions -= positions[:, :, :1].copy()
    # z_vel is spent scratch (scaled noise already consumed by the
    # filter): reuse it for the position deltas instead of faulting a
    # fresh tensor in.
    deltas = np.subtract(positions[:, :, 1:], positions[:, :, :-1],
                         out=z_vel[:, :, 1:])
    step_linear = _norm3_steps(deltas)

    columns = {
        "step_linear_m": step_linear,
        "step_angular_rad": step_angular,
    }
    if with_pose:
        np.multiply(omega, dt_s, out=omega)
        # eulers columns are (roll, pitch, yaw): reverse the row order
        # before integrating; z_ang is spent scratch and becomes the
        # output buffer.
        eulers = np.cumsum(omega[:, ::-1, :], axis=-1, out=z_ang)
        columns["positions"] = positions
        columns["eulers"] = eulers
    return columns


def _generate_columns_chunk(ids: Sequence[Tuple[int, int]],
                            profile: TraceProfile, duration_s: float,
                            dt_s: float, seed: int,
                            with_pose: bool) -> Dict[str, np.ndarray]:
    """Worker-side chunk body (module-level: picklable)."""
    return _generate_columns(ids, profile, duration_s, dt_s, seed,
                             with_pose)


#: Traces per tensor pass.  Modest chunks beat one monolithic pass:
#: the scratch working set stays allocator-warm across chunks instead
#: of page-faulting hundreds of fresh megabytes (measured ~1.4x on the
#: 500-trace corpus), and the same size feeds the pool chunking.
_GEN_CHUNK = 64


def generate_batch(viewers: int = 50, videos: int = 10,
                   profile: TraceProfile = VIDEO_360,
                   duration_s: float = constants.TRACE_DURATION_S,
                   dt_s: float = constants.TRACE_REPORT_PERIOD_S,
                   seed: int = 2022,
                   columns: str = "full",
                   workers: Optional[int] = 1,
                   chunk_size: Optional[int] = _GEN_CHUNK,
                   store: Optional[ColumnStore] = None,
                   group: str = "traces") -> TraceBatch:
    """The full dataset as one batch, byte-identical per seed.

    Per-trace streams derive from ``(seed, viewer, video)`` exactly as
    :func:`repro.motion.traces.generate_trace` derives them, so every
    column matches the per-trace path bit for bit — for any
    ``workers`` setting (each worker chunk re-derives its own
    streams; outputs land at absolute row indices via
    :func:`repro.parallel.parallel_map_arrays`).

    ``columns="steps"`` skips the pose tensors (the slot pipeline only
    consumes step magnitudes).  Passing ``store=`` persists the batch
    as a column group named ``group`` before returning.
    """
    if columns not in ("full", "steps"):
        raise ValueError("columns must be 'full' or 'steps'")
    with_pose = columns == "full"
    ids = [(viewer, video) for viewer in range(viewers)
           for video in range(videos)]
    n = int(round(duration_s / dt_s)) + 1
    specs = {
        "step_linear_m": ((n - 1,), np.float64),
        "step_angular_rad": ((n - 1,), np.float64),
    }
    if with_pose:
        specs["positions"] = ((3, n), np.float64)
        specs["eulers"] = ((3, n), np.float64)
    cols = parallel_map_arrays(
        partial(_generate_columns_chunk, profile=profile,
                duration_s=duration_s, dt_s=dt_s, seed=seed,
                with_pose=with_pose),
        ids, specs=specs, workers=workers, chunk_size=chunk_size,
        batched=True)

    batch = TraceBatch(
        viewer_ids=np.array([viewer for viewer, _ in ids],
                            dtype=np.int64),
        video_ids=np.array([video for _, video in ids],
                           dtype=np.int64),
        dt_s=dt_s,
        step_linear_m=cols["step_linear_m"],
        step_angular_rad=cols["step_angular_rad"],
        positions=cols.get("positions"),
        eulers=cols.get("eulers"),
    )
    if store is not None:
        batch.save(store, group, attrs={
            "seed": seed, "viewers": viewers, "videos": videos,
            "duration_s": duration_s, "profile": profile.name,
        })
    return batch
