"""Synthetic head-movement traces (the Section 5.4 dataset substitute).

The paper replays 500 one-minute traces (50 viewers x 10 360-degree
YouTube videos, sampled every 10 ms) from Lo et al.'s public dataset.
That dataset is not redistributable here, so we synthesize traces with
the same format and the same statistical character:

* yaw-dominant head rotation: a slow Ornstein-Uhlenbeck wander (gaze
  drift) plus Poisson-arriving "saccade" bursts (fast re-orientations
  toward new content), pitch and roll smaller;
* near-stationary position: seated/standing sway at centimeters;
* wide cross-trace variability: each viewer and each video carries an
  activity multiplier, so quiet traces barely move while busy ones
  whip around -- reproducing Fig. 16's spread from 99.98 % down to
  ~95 % availability.

Two generation profiles exist: ``NORMAL_USE`` matches the Fig. 3 study
(speeds at most ~19 deg/s and ~14 cm/s, i.e. ordinary app usage), and
``VIDEO_360`` matches 360-degree-video viewing, whose saccades are what
actually disconnect the link in Section 5.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from typing import List, Optional

import numpy as np

try:  # scipy is a declared dependency, but degrade gracefully without
    from scipy.signal import lfilter as _lfilter
except ImportError:  # pragma: no cover - exercised only without scipy
    _lfilter = None

from .. import constants
from ..determinism import derive
from ..geometry import euler_to_matrix
from ..parallel import parallel_map
from ..vrh import Pose


@dataclass(frozen=True)
class TraceProfile:
    """Statistical knobs for one kind of viewing behaviour."""

    name: str
    wander_speed_deg_s: float      # OU angular-speed scale (yaw)
    saccade_rate_hz: float         # Poisson arrival rate of fast turns
    saccade_peak_deg_s: float      # typical saccade peak speed
    sway_speed_m_s: float          # linear sway speed scale
    activity_sigma: float          # lognormal spread across traces
    activity_cap: float = 10.0     # truncation of the activity product


NORMAL_USE = TraceProfile(
    name="normal-use",
    wander_speed_deg_s=2.8,
    saccade_rate_hz=0.0,
    saccade_peak_deg_s=0.0,
    sway_speed_m_s=0.022,
    activity_sigma=0.2,
    activity_cap=1.5,
)

VIDEO_360 = TraceProfile(
    name="video-360",
    wander_speed_deg_s=8.0,
    saccade_rate_hz=0.18,
    saccade_peak_deg_s=28.0,
    sway_speed_m_s=0.04,
    activity_sigma=0.3,
    activity_cap=1.7,
)


@dataclass
class HeadTrace:
    """One viewing trace: timestamped poses at the dataset's 10 ms rate.

    ``step_linear_m`` / ``step_angular_rad`` are the exact inter-sample
    motion magnitudes (recorded at generation time), which is all the
    Section 5.4 simulation consumes.
    """

    viewer: int
    video: int
    dt_s: float
    positions: np.ndarray          # (n, 3)
    eulers: np.ndarray             # (n, 3): roll, pitch, yaw
    step_linear_m: np.ndarray      # (n - 1,)
    step_angular_rad: np.ndarray   # (n - 1,)

    def __post_init__(self):
        n = len(self.positions)
        if (len(self.eulers) != n or len(self.step_linear_m) != n - 1
                or len(self.step_angular_rad) != n - 1):
            raise ValueError("trace arrays have inconsistent lengths")

    @property
    def samples(self) -> int:
        return len(self.positions)

    @property
    def duration_s(self) -> float:
        return (self.samples - 1) * self.dt_s

    def pose_at(self, t_s: float) -> Pose:
        """Interpolated pose, for driving the full prototype simulator."""
        index = min(max(t_s / self.dt_s, 0.0), self.samples - 1.0)
        low = int(math.floor(index))
        high = min(low + 1, self.samples - 1)
        frac = index - low
        position = ((1.0 - frac) * self.positions[low]
                    + frac * self.positions[high])
        euler = (1.0 - frac) * self.eulers[low] + frac * self.eulers[high]
        return Pose(position, euler_to_matrix(*euler))

    def linear_speeds_m_s(self) -> np.ndarray:
        """Per-step linear speeds."""
        return self.step_linear_m / self.dt_s

    def angular_speeds_rad_s(self) -> np.ndarray:
        """Per-step angular speeds."""
        return self.step_angular_rad / self.dt_s


def _ou_series_reference(n: int, dt: float, tau: float, sigma: float,
                         rng: np.random.Generator) -> np.ndarray:
    """The original per-sample OU recursion, kept as the oracle.

    ``_ou_series`` must reproduce it bit-for-bit; it is also the
    fallback when scipy is unavailable.
    """
    series = np.empty(n)
    series[0] = rng.normal(0.0, sigma)
    decay = math.exp(-dt / tau)
    innovation = sigma * math.sqrt(max(1.0 - decay * decay, 1e-12))
    for i in range(1, n):
        series[i] = decay * series[i - 1] + innovation * rng.normal()
    return series


def _ou_series(n: int, dt: float, tau: float, sigma: float,
               rng: np.random.Generator) -> np.ndarray:
    """A zero-mean Ornstein-Uhlenbeck path (stationary start).

    Vectorized AR(1) formulation: one batched draw of the same standard
    -normal stream the reference recursion consumes (NumPy fills arrays
    with the identical ziggurat sequence scalar calls would produce),
    then ``scipy.signal.lfilter`` evaluates ``y[i] = decay * y[i-1] +
    x[i]`` in the same floating-point order as the loop, so the output
    is bit-identical to ``_ou_series_reference`` for the same generator
    state.
    """
    if n <= 0:
        return np.empty(0)
    if _lfilter is None:  # pragma: no cover - exercised only w/o scipy
        return _ou_series_reference(n, dt, tau, sigma, rng)
    decay = math.exp(-dt / tau)
    innovation = sigma * math.sqrt(max(1.0 - decay * decay, 1e-12))
    z = rng.standard_normal(n)
    x = innovation * z
    x[0] = sigma * z[0]
    return _lfilter([1.0], [1.0, -decay], x)


def _saccade_series(n: int, dt: float, rate_hz: float, peak: float,
                    rng: np.random.Generator) -> np.ndarray:
    """Angular-velocity bursts: bell-shaped, Poisson arrivals.

    Burst parameters are drawn one burst at a time (preserving the
    exact RNG stream the original implementation consumed, so datasets
    stay byte-deterministic per seed), but the kernel deposits are
    batched: all burst supports are concatenated and accumulated with a
    single ``np.add.at`` scatter instead of one slice-add per burst.
    """
    series = np.zeros(n)
    if rate_hz <= 0 or peak <= 0:
        return series
    expected = rate_hz * n * dt
    bursts = []
    for _ in range(rng.poisson(expected)):
        center = rng.integers(0, n)
        duration_s = rng.uniform(0.15, 0.45)
        width = max(int(duration_s / dt), 2)
        magnitude = peak * rng.lognormal(0.0, 0.4) * rng.choice([-1.0, 1.0])
        bursts.append((int(center), width, magnitude))
    if not bursts:
        return series
    indices = np.concatenate([np.arange(max(c - w, 0), min(c + w, n))
                              for c, w, _ in bursts])
    deposits = np.concatenate([
        m * np.exp(-0.5 * ((np.arange(max(c - w, 0), min(c + w, n)) - c)
                           / (w / 2.5)) ** 2)
        for c, w, m in bursts])
    np.add.at(series, indices, deposits)
    return series


def generate_trace(viewer: int, video: int,
                   profile: TraceProfile = VIDEO_360,
                   duration_s: float = constants.TRACE_DURATION_S,
                   dt_s: float = constants.TRACE_REPORT_PERIOD_S,
                   seed: int = 0) -> HeadTrace:
    """Synthesize one viewing trace.

    The random stream is derived from (seed, viewer, video), so a
    dataset regenerates identically; viewer and video also set the
    activity multipliers, giving each viewer a temperament and each
    video a pace.
    """
    rng = derive(seed, viewer, video)
    n = int(round(duration_s / dt_s)) + 1
    viewer_activity = rng.lognormal(0.0, profile.activity_sigma)
    video_activity = rng.lognormal(0.0, profile.activity_sigma)
    activity = min(viewer_activity * video_activity, profile.activity_cap)

    wander = math.radians(profile.wander_speed_deg_s) * activity
    omega = np.zeros((n, 3))
    omega[:, 2] = _ou_series(n, dt_s, 0.8, wander, rng)  # yaw
    omega[:, 1] = _ou_series(n, dt_s, 0.8, wander * 0.45, rng)  # pitch
    omega[:, 0] = _ou_series(n, dt_s, 0.8, wander * 0.2, rng)  # roll
    saccades = _saccade_series(
        n, dt_s, profile.saccade_rate_hz,
        math.radians(profile.saccade_peak_deg_s) * activity, rng)
    omega[:, 2] += saccades

    velocity = np.column_stack([
        _ou_series(n, dt_s, 1.2, profile.sway_speed_m_s * activity, rng)
        for _ in range(3)])
    velocity[:, 2] *= 0.4  # vertical sway is smaller

    eulers = np.cumsum(omega * dt_s, axis=0)
    positions = np.cumsum(velocity * dt_s, axis=0)
    positions -= positions[0]

    step_linear = np.linalg.norm(np.diff(positions, axis=0), axis=1)
    step_angular = np.linalg.norm(omega[1:], axis=1) * dt_s
    return HeadTrace(viewer=viewer, video=video, dt_s=dt_s,
                     positions=positions, eulers=eulers,
                     step_linear_m=step_linear,
                     step_angular_rad=step_angular)


def resample_trace(trace: HeadTrace, factor: int) -> HeadTrace:
    """The same physical motion, reported ``factor`` times less often.

    Groups ``factor`` consecutive samples into one report interval
    (summing the inter-sample motion), which is how a slower tracker
    would see the identical head movement.  Used by the
    tracking-frequency ablation.
    """
    if factor < 1:
        raise ValueError("resample factor must be at least 1")
    if factor == 1:
        return trace
    steps = len(trace.step_linear_m)
    groups = steps // factor
    if groups < 1:
        raise ValueError("trace too short for this resample factor")
    used = groups * factor
    step_linear = trace.step_linear_m[:used].reshape(
        groups, factor).sum(axis=1)
    step_angular = trace.step_angular_rad[:used].reshape(
        groups, factor).sum(axis=1)
    indices = np.arange(0, used + 1, factor)
    return HeadTrace(viewer=trace.viewer, video=trace.video,
                     dt_s=trace.dt_s * factor,
                     positions=trace.positions[indices],
                     eulers=trace.eulers[indices],
                     step_linear_m=step_linear,
                     step_angular_rad=step_angular)


def _generate_indexed(ids, profile: TraceProfile, duration_s: float,
                      seed: int) -> HeadTrace:
    """Generate one (viewer, video) trace (module-level: picklable)."""
    viewer, video = ids
    return generate_trace(viewer, video, profile=profile,
                          duration_s=duration_s, seed=seed)


def generate_dataset(viewers: int = 50, videos: int = 10,
                     profile: TraceProfile = VIDEO_360,
                     duration_s: float = constants.TRACE_DURATION_S,
                     seed: int = 2022,
                     workers: Optional[int] = 1,
                     engine: str = "auto",
                     store=None, group: str = "traces") -> List[HeadTrace]:
    """The full 500-trace dataset (viewers x videos), deterministic.

    Each trace's random stream is derived from ``(seed, viewer,
    video)`` and results merge back in (viewer, video) order, so the
    dataset is byte-identical for any ``workers`` setting — and for
    either ``engine``.  ``engine="auto"`` (and ``"batch"``) routes
    through :func:`repro.motion.batch.generate_batch`, which produces
    the identical traces as zero-copy views of one corpus tensor;
    ``engine="loop"`` keeps the original one-trace-at-a-time path.
    Passing ``store=`` (a :class:`repro.store.ColumnStore`) persists
    the corpus as column group ``group`` (batch engine only).
    """
    if engine not in ("auto", "batch", "loop"):
        raise ValueError("engine must be 'auto', 'batch' or 'loop'")
    if engine in ("auto", "batch"):
        from .batch import generate_batch  # local: avoids module cycle
        batch = generate_batch(viewers=viewers, videos=videos,
                               profile=profile, duration_s=duration_s,
                               seed=seed, workers=workers,
                               store=store, group=group)
        return batch.traces()
    if store is not None:
        raise ValueError("store= requires the batch engine")
    ids = [(viewer, video) for viewer in range(viewers)
           for video in range(videos)]
    return parallel_map(
        partial(_generate_indexed, profile=profile,
                duration_s=duration_s, seed=seed),
        ids, workers=workers)
