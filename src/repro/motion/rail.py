"""The linear rail (Fig. 12b): pure-linear-motion test fixture."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry import normalize
from ..vrh import Pose
from .profiles import LinearStrokeProfile, StrokeSchedule


@dataclass(frozen=True)
class LinearRail:
    """A rail of fixed length along a horizontal axis.

    The breadboard carrying the RX assembly slides along it; the
    rotation stage is locked, so orientation never changes.
    """

    axis: np.ndarray
    length_m: float = 0.4

    def __post_init__(self):
        object.__setattr__(self, "axis", normalize(self.axis))
        if self.length_m <= 0:
            raise ValueError("rail length must be positive")

    def centered_base(self, pose: Pose) -> Pose:
        """Base pose such that ``pose`` is the rail's center."""
        return Pose(pose.position - (self.length_m / 2.0) * self.axis,
                    pose.orientation)

    def stroke_profile(self, center_pose: Pose,
                       speeds_m_s: Sequence[float],
                       rest_s: float = 0.25) -> LinearStrokeProfile:
        """Back-and-forth strokes spanning the rail around a center."""
        schedule = StrokeSchedule(extent=self.length_m,
                                  speeds=list(speeds_m_s), rest_s=rest_s)
        return LinearStrokeProfile(base_pose=self.centered_base(center_pose),
                                   axis=np.array(self.axis),
                                   schedule=schedule)
