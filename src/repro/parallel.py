"""Deterministic chunked process-pool mapping.

The dataset-scale workloads (generating 500 traces, replaying each
through the Section 5.4 slot model, sweeping calibration seeds) are
embarrassingly parallel: every item is pure and independent.  This
module provides the two primitives they share — ``parallel_map`` for
object results and ``parallel_map_arrays`` for fixed-shape array
results — with three properties the callers rely on:

* **Determinism.**  Results come back in input order regardless of the
  worker count or chunking, so ``workers=8`` produces the exact same
  output ``workers=1`` does.
* **Chunked dispatch.**  Items are grouped into contiguous chunks
  (several chunks per worker, so stragglers rebalance) and each chunk
  crosses the process boundary once, amortizing pickling overhead.
* **Graceful serial fallback.**  ``workers=1`` never touches
  ``multiprocessing``; and if a pool cannot be used at all (sandboxed
  environment, unpicklable callable, broken pool), the map reruns
  serially in-process and emits a single
  :class:`ParallelFallbackWarning` so the degradation is observable
  without changing the result.  The fallback re-evaluates from
  scratch, which is safe because callers pass pure functions.

``parallel_map`` returns a list and pays one pickle round-trip per
chunk of results.  ``parallel_map_arrays`` removes that cost for the
hot tensor pipelines: the caller declares named output arrays with one
row per item, the parent maps them into ``multiprocessing.
shared_memory`` (or reuses the caller's disk-backed ``np.memmap``),
and workers write their rows directly into the shared buffers — only
the item chunks cross the process boundary, never the results.
"""

from __future__ import annotations

import math
import os
import warnings
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

#: How many chunks to aim for per worker; >1 so uneven chunk runtimes
#: rebalance across the pool instead of serializing on the slowest.
_CHUNKS_PER_WORKER = 4

#: Environment variable overriding :func:`default_workers`.
WORKERS_ENV = "REPRO_WORKERS"


class ParallelFallbackWarning(RuntimeWarning):
    """A process pool could not be used; the map ran serially.

    The result is identical (the callers pass pure functions), only
    slower — this warning makes the silent degradation observable so
    benchmarks and CI can record it instead of mistaking a sandboxed
    serial run for a parallel one.
    """


def default_workers() -> int:
    """A sensible worker count for this machine (>= 1).

    Respects, in order: the ``REPRO_WORKERS`` environment variable
    (explicit operator override), the scheduler affinity mask (cgroup
    / container CPU limits, ``taskset``), and finally the raw CPU
    count.  ``os.cpu_count`` alone over-reports inside containers
    pinned to a subset of cores, which oversubscribes the pool.
    """
    override = os.environ.get(WORKERS_ENV)
    if override is not None:
        try:
            workers = int(override)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {override!r}")
        if workers < 1:
            raise ValueError(f"{WORKERS_ENV} must be >= 1, got {workers}")
        return workers
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def chunk_items(items: Sequence[_Item],
                chunk_size: int) -> List[Sequence[_Item]]:
    """Split ``items`` into contiguous chunks of ``chunk_size``.

    The last chunk may be short.  Concatenating the chunks in order
    reproduces ``items`` exactly — this is what makes the parallel map
    order-deterministic.
    """
    if chunk_size < 1:
        raise ValueError("chunk size must be at least 1")
    return [items[i:i + chunk_size]
            for i in range(0, len(items), chunk_size)]


def _resolve_chunk_size(n_items: int, workers: int,
                        chunk_size: Optional[int]) -> int:
    if chunk_size is not None:
        return chunk_size
    return max(1, math.ceil(n_items / (workers * _CHUNKS_PER_WORKER)))


def _warn_fallback(kind: str, reason: BaseException) -> None:
    """One observable warning per degraded map call."""
    warnings.warn(
        f"{kind}: process pool unavailable "
        f"({type(reason).__name__}: {reason}); re-ran serially "
        "in-process (results are identical, only slower)",
        ParallelFallbackWarning, stacklevel=3)


def _apply_chunk(fn: Callable[[_Item], _Result],
                 chunk: Sequence[_Item]) -> List[_Result]:
    """Worker-side body: evaluate one chunk (module-level: picklable)."""
    return [fn(item) for item in chunk]


def parallel_map(fn: Callable[[_Item], _Result],
                 items: Sequence[_Item],
                 workers: Optional[int] = None,
                 chunk_size: Optional[int] = None) -> List[_Result]:
    """``[fn(x) for x in items]``, optionally across processes.

    ``workers=None`` or ``1`` runs serially in-process.  ``workers>1``
    fans the chunks out over a process pool and merges the results back
    in input order.  ``fn`` must be pure (the serial fallback may
    re-evaluate it) and, for ``workers>1``, picklable along with the
    items; a module-level function or ``functools.partial`` of one
    qualifies.  A lambda simply degrades to the serial path (with one
    :class:`ParallelFallbackWarning`).
    """
    items = list(items)
    if workers is None:
        workers = 1
    if workers < 1:
        raise ValueError("workers must be at least 1")
    workers = min(workers, len(items)) if items else 1
    if workers <= 1:
        return [fn(item) for item in items]

    chunks = chunk_items(items, _resolve_chunk_size(len(items), workers,
                                                    chunk_size))
    try:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=workers) as pool:
            per_chunk = list(pool.map(_apply_chunk,
                                      [fn] * len(chunks), chunks))
    except Exception as exc:
        # Pool unavailable (no fork/spawn permitted, unpicklable fn,
        # worker crash, ...): fall back to the serial path.
        _warn_fallback("parallel_map", exc)
        return [fn(item) for item in items]
    return [result for chunk in per_chunk for result in chunk]


# ---------------------------------------------------------------------------
# Shared-memory array transport
# ---------------------------------------------------------------------------

#: One output column: (trailing per-item shape, dtype).  The allocated
#: array is ``(len(items), *shape)``.
ArraySpec = Tuple[Tuple[int, ...], Union[str, np.dtype, type]]

#: Worker-side handle describing where one output array lives.
#: kind is "shm" (name is the SharedMemory name) or "mmap" (name is
#: the backing ``.npy`` path, opened with numpy's own header parsing).
_Handle = Tuple[str, str, Tuple[int, ...], str]


def _attach_output(handle: _Handle):
    """Open one output array inside a worker. Returns (array, closer)."""
    kind, name, shape, dtype = handle
    if kind == "shm":
        from multiprocessing import shared_memory
        block = shared_memory.SharedMemory(name=name)
        array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
        return array, block.close
    array = np.lib.format.open_memmap(name, mode="r+")
    return array, lambda: None


def _fill_chunk(fn: Callable, chunk: Sequence, start: int,
                handles: Dict[str, _Handle], batched: bool) -> int:
    """Worker-side body: write one chunk's rows into the shared outputs.

    Returns the number of rows written (a tiny ack instead of the data
    itself — the whole point of the array transport).
    """
    attached = {name: _attach_output(handle)
                for name, handle in handles.items()}
    try:
        if batched:
            rows = fn(list(chunk))
            for name, (array, _) in attached.items():
                array[start:start + len(chunk)] = rows[name]
        else:
            for offset, item in enumerate(chunk):
                row = fn(item)
                for name, (array, _) in attached.items():
                    array[start + offset] = row[name]
    finally:
        # Views into the shared block must be dropped before closing.
        for name in list(attached):
            array, closer = attached.pop(name)
            del array
            closer()
    return len(chunk)


def _fill_serial(fn: Callable, items: Sequence,
                 outputs: Dict[str, np.ndarray], batched: bool,
                 chunk_size: Optional[int] = None) -> None:
    if batched:
        # Honor the chunk size serially too: batched engines get the
        # same scratch-buffer working-set bound a pool worker would
        # (large monolithic passes thrash fresh pages; modest chunks
        # let the allocator recycle warm ones between iterations).
        start = 0
        for chunk in chunk_items(items, chunk_size or max(1, len(items))):
            rows = fn(list(chunk))
            for name, array in outputs.items():
                array[start:start + len(chunk)] = rows[name]
            start += len(chunk)
        return
    for index, item in enumerate(items):
        row = fn(item)
        for name, array in outputs.items():
            array[index] = row[name]


def _allocate_outputs(n_items: int,
                      specs: Mapping[str, ArraySpec]
                      ) -> Dict[str, np.ndarray]:
    outputs: Dict[str, np.ndarray] = {}
    for name, (shape, dtype) in specs.items():
        outputs[name] = np.empty((n_items,) + tuple(shape),
                                 dtype=np.dtype(dtype))
    return outputs


def _memmap_handle(array: np.memmap) -> Optional[_Handle]:
    """A reopenable handle for a caller-provided disk-backed memmap."""
    filename = getattr(array, "filename", None)
    if filename is None or getattr(array, "offset", 0) == 0:
        # Only numpy-format memmaps (``open_memmap``) reopen with the
        # right header offset; a raw offset-0 buffer map would clobber
        # its own header.
        return None
    return ("mmap", str(filename), tuple(array.shape), array.dtype.str)


def parallel_map_arrays(fn: Callable,
                        items: Sequence,
                        specs: Optional[Mapping[str, ArraySpec]] = None,
                        out: Optional[Mapping[str, np.ndarray]] = None,
                        workers: Optional[int] = None,
                        chunk_size: Optional[int] = None,
                        batched: bool = False) -> Dict[str, np.ndarray]:
    """Map ``fn`` over ``items``, collecting rows of named arrays.

    ``fn(item)`` returns ``{name: row}`` for every name in ``specs`` /
    ``out``; row ``i`` of each output array is the result for
    ``items[i]``.  With ``batched=True``, ``fn`` instead receives a
    *list* of items and returns ``{name: stacked_rows}`` — the hook
    that lets tensor engines (``generate_batch``/``simulate_batch``)
    run one vectorized pass per chunk inside each worker.

    Exactly one of ``specs`` (allocate ``(len(items), *shape)`` arrays
    here) or ``out`` (caller-preallocated arrays, e.g. the columnar
    store's disk-backed memmaps) must be given.

    ``workers=None`` (or ``1``) runs serially; size a real pool with
    :func:`default_workers`, which resolves ``REPRO_WORKERS`` → the
    scheduler affinity mask → ``os.cpu_count()``, in that order.
    ``workers>1`` ships only the item chunks to the pool; the output
    rows travel through ``multiprocessing.shared_memory`` (or straight
    into the caller's ``np.memmap`` files), never through pickle.  The
    chunking is identical to :func:`parallel_map`, the rows land at
    absolute indices, and the serial fallback fills the same arrays
    in-process — so the output bytes are identical for any ``workers``
    setting.
    """
    items = list(items)
    if (specs is None) == (out is None):
        raise ValueError("pass exactly one of specs= or out=")
    if specs is not None:
        outputs = _allocate_outputs(len(items), specs)
    else:
        assert out is not None
        outputs = dict(out)
        for name, array in outputs.items():
            if array.shape[:1] != (len(items),):
                raise ValueError(
                    f"out[{name!r}] has leading dimension "
                    f"{array.shape[:1]}, expected ({len(items)},)")
    if workers is None:
        workers = 1
    if workers < 1:
        raise ValueError("workers must be at least 1")
    workers = min(workers, len(items)) if items else 1
    if workers <= 1 or not items:
        _fill_serial(fn, items, outputs, batched, chunk_size)
        return outputs

    try:
        _fill_pooled(fn, items, outputs, workers, chunk_size, batched)
    except Exception as exc:
        _warn_fallback("parallel_map_arrays", exc)
        _fill_serial(fn, items, outputs, batched, chunk_size)
    return outputs


def _fill_pooled(fn: Callable, items: Sequence,
                 outputs: Dict[str, np.ndarray], workers: int,
                 chunk_size: Optional[int], batched: bool) -> None:
    """Fan chunks over a pool, outputs via shm / caller memmaps."""
    from concurrent.futures import ProcessPoolExecutor

    handles: Dict[str, _Handle] = {}
    blocks = []     # (SharedMemory, target ndarray, shm ndarray)
    try:
        for name, array in outputs.items():
            handle = _memmap_handle(array) if isinstance(
                array, np.memmap) else None
            if handle is None:
                handle, record = _create_shm(name, array)
                blocks.append(record)
            handles[name] = handle

        chunks = chunk_items(items, _resolve_chunk_size(
            len(items), workers, chunk_size))
        starts = [0] * len(chunks)
        for index in range(1, len(chunks)):
            starts[index] = starts[index - 1] + len(chunks[index - 1])
        with ProcessPoolExecutor(max_workers=workers) as pool:
            written = list(pool.map(
                _fill_chunk, [fn] * len(chunks), chunks, starts,
                [handles] * len(chunks), [batched] * len(chunks)))
        if sum(written) != len(items):  # pragma: no cover - paranoia
            raise RuntimeError("pool wrote an unexpected row count")
        # Bulk-copy shm blocks into the caller-visible arrays (one
        # memcpy; the rows themselves never crossed through pickle).
        for block, target, mirror in blocks:
            target[:] = mirror
    finally:
        for block, target, mirror in blocks:
            del mirror
            try:
                block.close()
                block.unlink()
            except OSError:
                # Already closed/unlinked (a crashed worker's atexit
                # hooks race this cleanup); nothing left to release.
                pass


def _create_shm(name: str, array: np.ndarray):
    """Allocate one shared block mirroring ``array``."""
    from multiprocessing import shared_memory
    nbytes = max(1, int(array.nbytes))
    block = shared_memory.SharedMemory(create=True, size=nbytes)
    mirror = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
    handle: _Handle = ("shm", block.name, tuple(array.shape),
                      array.dtype.str)
    return handle, (block, array, mirror)


# ---------------------------------------------------------------------------
# Supervised single-call transport
# ---------------------------------------------------------------------------

def _pending_call_child(conn, fn: Callable, arg: object) -> None:
    """Child body for :class:`PendingCall` (module-level: spawnable).

    Outcomes travel back as one ``(status, value)`` message; a child
    that dies without sending (SIGKILL, OOM, segfault) is detected by
    the parent as EOF on the pipe plus a nonzero exit code.
    """
    try:
        try:
            result = fn(arg)
        except BaseException as exc:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        else:
            try:
                conn.send(("ok", result))
            except Exception as exc:
                conn.send(("error",
                           f"result not transportable: {exc}"))
    except (BrokenPipeError, OSError):
        # The parent died or closed its end; there is nobody left to
        # report to, so the child just exits.
        pass
    finally:
        conn.close()


class PendingCall:
    """One callable evaluating in a dedicated, *killable* child process.

    The pool primitives above trade isolation for throughput: a worker
    serves many chunks, so one hung or crashed item poisons the whole
    map (the fallback then re-runs everything serially).  A supervisor
    needs the opposite trade — per-call blast radius — so
    ``PendingCall`` runs exactly one ``fn(arg)`` in its own process:

    * :meth:`kill` stops a hung call without disturbing its siblings;
    * a child killed mid-call (chaos, OOM) surfaces as a ``"died"``
      status instead of an exception in the parent;
    * the one-shot pipe means a completed call's result is never lost
      to a later crash of the same worker.

    This is the execution transport under
    ``repro.orchestrator.SweepRunner``; prefer :func:`parallel_map`
    for plain fan-out.
    """

    def __init__(self, fn: Callable, arg: object) -> None:
        from multiprocessing import Pipe, Process
        self._recv, child = Pipe(duplex=False)
        self.process = Process(target=_pending_call_child,
                               args=(child, fn, arg), daemon=True)
        self.process.start()
        # The parent's copy of the child end must close so that a dead
        # child reads as EOF rather than a forever-open pipe.
        child.close()

    @property
    def connection(self):
        """The readable end, for ``multiprocessing.connection.wait``."""
        return self._recv

    def ready(self) -> bool:
        """True when a result message (or EOF) is waiting."""
        return self._recv.poll()

    def kill(self) -> None:
        """SIGKILL the child (idempotent); reaps the process."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join()

    def finish(self) -> Tuple[str, object]:
        """Harvest the outcome: ``(status, value)``; reaps the process.

        ``("ok", result)`` for a clean return, ``("error", message)``
        when ``fn`` raised, ``("died", detail)`` when the child exited
        without reporting (killed / crashed).  A result that was fully
        sent before a kill still comes back as ``"ok"`` — a completed
        call is never discarded.
        """
        message: Optional[Tuple[str, object]] = None
        try:
            if self._recv.poll():
                message = self._recv.recv()
        except (EOFError, OSError):
            message = None
        self.process.join()
        self._recv.close()
        if message is not None:
            return message[0], message[1]
        code = self.process.exitcode
        detail = f"exit code {code}" if code is None or code >= 0 \
            else f"killed by signal {-code}"
        return "died", detail


def wait_ready(calls: Sequence[PendingCall],
               timeout_s: Optional[float] = None) -> List[PendingCall]:
    """The subset of ``calls`` with a result (or EOF) available.

    Blocks up to ``timeout_s`` (None = forever); returns ``[]`` on
    timeout.  A dead child's pipe reads as ready, so supervisors wake
    for crashes exactly like for completions.
    """
    from multiprocessing.connection import wait
    by_conn = {call.connection: call for call in calls}
    ready = wait(list(by_conn), timeout=timeout_s)
    return [by_conn[conn] for conn in ready if conn in by_conn]
