"""Deterministic chunked process-pool mapping.

The dataset-scale workloads (generating 500 traces, replaying each
through the Section 5.4 slot model, sweeping calibration seeds) are
embarrassingly parallel: every item is pure and independent.  This
module provides the one primitive they share — ``parallel_map`` — with
three properties the callers rely on:

* **Determinism.**  Results come back in input order regardless of the
  worker count or chunking, so ``workers=8`` produces the exact same
  list ``workers=1`` does.
* **Chunked dispatch.**  Items are grouped into contiguous chunks
  (several chunks per worker, so stragglers rebalance) and each chunk
  crosses the process boundary once, amortizing pickling overhead.
* **Graceful serial fallback.**  ``workers=1`` never touches
  ``multiprocessing``; and if a pool cannot be used at all (sandboxed
  environment, unpicklable callable, broken pool), the map silently
  reruns serially in-process.  The fallback re-evaluates from scratch,
  which is safe because callers pass pure functions.
"""

from __future__ import annotations

import math
import os
from typing import Callable, List, Optional, Sequence, TypeVar

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

#: How many chunks to aim for per worker; >1 so uneven chunk runtimes
#: rebalance across the pool instead of serializing on the slowest.
_CHUNKS_PER_WORKER = 4


def default_workers() -> int:
    """A sensible worker count for this machine (>= 1)."""
    return os.cpu_count() or 1


def chunk_items(items: Sequence[_Item],
                chunk_size: int) -> List[Sequence[_Item]]:
    """Split ``items`` into contiguous chunks of ``chunk_size``.

    The last chunk may be short.  Concatenating the chunks in order
    reproduces ``items`` exactly — this is what makes the parallel map
    order-deterministic.
    """
    if chunk_size < 1:
        raise ValueError("chunk size must be at least 1")
    return [items[i:i + chunk_size]
            for i in range(0, len(items), chunk_size)]


def _apply_chunk(fn: Callable[[_Item], _Result],
                 chunk: Sequence[_Item]) -> List[_Result]:
    """Worker-side body: evaluate one chunk (module-level: picklable)."""
    return [fn(item) for item in chunk]


def parallel_map(fn: Callable[[_Item], _Result],
                 items: Sequence[_Item],
                 workers: Optional[int] = None,
                 chunk_size: Optional[int] = None) -> List[_Result]:
    """``[fn(x) for x in items]``, optionally across processes.

    ``workers=None`` or ``1`` runs serially in-process.  ``workers>1``
    fans the chunks out over a process pool and merges the results back
    in input order.  ``fn`` must be pure (the serial fallback may
    re-evaluate it) and, for ``workers>1``, picklable along with the
    items; a module-level function or ``functools.partial`` of one
    qualifies.  A lambda simply degrades to the serial path.
    """
    items = list(items)
    if workers is None:
        workers = 1
    if workers < 1:
        raise ValueError("workers must be at least 1")
    workers = min(workers, len(items)) if items else 1
    if workers <= 1:
        return [fn(item) for item in items]

    if chunk_size is None:
        chunk_size = max(
            1, math.ceil(len(items) / (workers * _CHUNKS_PER_WORKER)))
    chunks = chunk_items(items, chunk_size)
    try:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=workers) as pool:
            per_chunk = list(pool.map(_apply_chunk,
                                      [fn] * len(chunks), chunks))
    except Exception:
        # Pool unavailable (no fork/spawn permitted, unpicklable fn,
        # worker crash, ...): fall back to the serial path.
        return [fn(item) for item in items]
    return [result for chunk in per_chunk for result in chunk]
