"""A full VR viewing session over the simulated link.

Drives the complete closed loop -- synthetic 360-degree-video head
motion, VRH-T reports, the learned pointing function, galvo steering,
channel physics, SFP link state, and iperf-style measurement -- for a
20-second session, then prints the experience summary::

    python examples/vr_session.py
"""

import numpy as np

from repro.motion import generate_trace
from repro.reporting import TextTable, fmt_float, sparkline
from repro.simulate import PrototypeSession, Testbed
from repro.vrh import Pose


class TraceAroundHome:
    """Adapter: replay a head trace relative to the testbed's home."""

    def __init__(self, trace, home: Pose, duration_s: float):
        self._trace = trace
        self._home = home
        self.duration_s = duration_s

    def pose_at(self, t_s: float) -> Pose:
        relative = self._trace.pose_at(t_s)
        return Pose(self._home.position + relative.position,
                    relative.orientation @ self._home.orientation)


def main():
    print("Calibrating the 10G prototype...")
    testbed = Testbed(seed=21)
    outcome = testbed.calibrate()
    session = PrototypeSession(testbed, outcome.system)

    print("Replaying a 360-degree-video head trace through the live "
          "loop...")
    trace = generate_trace(viewer=4, video=2, seed=2022)
    profile = TraceAroundHome(trace, testbed.home_pose, duration_s=20.0)
    result = session.run(profile)

    optimal = testbed.design.sfp.optimal_throughput_gbps
    throughputs = result.throughputs_gbps()
    table = TextTable(["metric", "value"])
    table.add_row("session length (s)", fmt_float(
        result.sample_times_s[-1], 1))
    table.add_row("link uptime (%)", fmt_float(
        result.uptime_fraction * 100, 2))
    table.add_row("mean throughput (Gbps)", fmt_float(
        float(np.mean(throughputs)), 2))
    table.add_row("optimal throughput (Gbps)", fmt_float(optimal, 1))
    table.add_row("min received power (dBm)", fmt_float(
        float(result.power_dbm.min()), 1))
    table.add_row("pointing updates", str(result.pointing_calls))
    table.add_row("pointing failures", str(result.pointing_failures))
    print()
    print(table.render())

    print("\nthroughput over the session (each char = ~0.3 s):")
    print("  " + sparkline(throughputs, width=66))

    windows = throughputs
    dips = int(np.sum(windows < 0.9 * optimal))
    print(f"\n{dips} of {len(windows)} 50 ms windows fell below 90% of "
          f"optimal throughput.")
    if dips == 0:
        print("The viewer would not have noticed the wireless link at "
              "all.")
    else:
        print("Fast head turns briefly exceeded the link's movement "
              "tolerance,\nexactly the off-slots Section 5.4 "
              "quantifies.")


if __name__ == "__main__":
    main()
