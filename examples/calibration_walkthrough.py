"""Step-by-step walkthrough of the Section 4 learning pipeline.

Shows each stage with its intermediate numbers: the board calibration
(4.1), the joint mapping fit (4.2), the G' inverse, and the pointing
fixed-point iteration (4.3)::

    python examples/calibration_walkthrough.py
"""

import numpy as np

from repro.core import (
    BoardRig,
    GmaModel,
    evaluate_fit,
    fit_gma,
    fit_mapping,
    interior_grid_points,
    mean_coincidence_error_m,
    point,
    solve_inverse,
)
from repro.simulate import Testbed
from repro.simulate.rig import _perturbed_params


def stage1(testbed):
    print("Stage 1 (Section 4.1) -- learn G in K-space")
    print("  collecting 266 board samples by steering the real beam "
          "onto grid points...")
    grid = interior_grid_points()
    rig = BoardRig(testbed.tx_hardware,
                   rng=np.random.default_rng(100))
    samples = rig.collect_samples(grid)
    print(f"  collected {len(samples)} samples "
          f"(voltages span {min(s.v1 for s in samples):+.1f} to "
          f"{max(s.v1 for s in samples):+.1f} V)")
    guess = _perturbed_params(testbed.tx_hardware.params, testbed.rng,
                              3e-3, np.radians(1.0), 0.01)
    model = fit_gma(samples, guess)
    holdout = grid[:40] + np.array([0.0127, 0.0127])
    errors = evaluate_fit(model, rig, holdout)
    print(f"  held-out board error: avg {errors.mean() * 1e3:.2f} mm, "
          f"max {errors.max() * 1e3:.2f} mm "
          f"(paper: 1.24 / 5.30 mm)")
    return model


def stage2(testbed, outcome):
    print("\nStage 2 (Section 4.2) -- learn the 12 mapping parameters")
    residual = mean_coincidence_error_m(outcome.system,
                                        outcome.mapping_samples)
    print(f"  {len(outcome.mapping_samples)} aligned 5-tuples, "
          f"joint fit residual d(pt,tr)+d(pr,tt) = "
          f"{residual * 1e3:.1f} mm")


def stage3(testbed, outcome):
    print("\nStage 3 (Section 4.3) -- G' inverse and pointing P")
    system = outcome.system
    tx = system.tx_model_vr
    target = tx.beam(1.0, -0.5).point_at(1.75)
    inverse = solve_inverse(tx, target)
    print(f"  G'(target) converged in {inverse.iterations} iterations "
          f"(paper: 2-4), miss {inverse.miss_distance_m * 1e6:.1f} um")
    pose = testbed.evaluation_poses(1)[0]
    command = point(system, testbed.tracker.report(pose))
    print(f"  P(pose) converged in {command.iterations} iterations "
          f"(paper: 2-5)")
    testbed.apply_command(command)
    state = testbed.channel.evaluate(pose)
    print(f"  resulting link: {state.received_power_dbm:.1f} dBm "
          f"received (peak "
          f"{testbed.design.peak_power_dbm(state.range_m):.1f}), "
          f"{'connected' if state.connected else 'DISCONNECTED'}")


def main():
    testbed = Testbed(seed=13)
    stage1(testbed)
    print("\n(running the full built-in calibration for stages 2-3...)")
    outcome = testbed.calibrate()
    stage2(testbed, outcome)
    stage3(testbed, outcome)


if __name__ == "__main__":
    main()
