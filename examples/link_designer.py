"""Link-design exploration: reproduce the Section 5.1 design study.

Compares the collimated and diverging options (Table 1), sweeps the
beam diameter at RX to find the optimal 16 mm operating point
(Fig. 11), and prints the full link budget of the chosen design::

    python examples/link_designer.py
"""

import numpy as np

from repro.link import (
    diameter_sweep,
    evaluate,
    link_10g_collimated,
    link_10g_diverging,
    link_25g,
)
from repro.reporting import TextTable, fmt_float


def table1():
    print("Step 1 -- collimated vs diverging (Table 1, 20 mm at RX)")
    table = TextTable(["design", "TX tol (mrad)", "RX tol (mrad)",
                       "lateral tol (mm)", "peak (dBm)"])
    for design in (link_10g_collimated(20e-3), link_10g_diverging(20e-3)):
        r = evaluate(design)
        table.add_row(design.name,
                      fmt_float(r.tx_angular_tolerance_rad * 1e3),
                      fmt_float(r.rx_angular_tolerance_rad * 1e3),
                      fmt_float(r.lateral_tolerance_m * 1e3, 1),
                      fmt_float(r.peak_power_dbm, 1))
    print(table.render())
    print("-> the diverging beam trades ~25 dB of power for several-"
          "fold\n   movement tolerance; Cyclops needs the tolerance.\n")


def fig11():
    print("Step 2 -- choosing the beam diameter at RX (Fig. 11)")
    diameters = np.arange(8e-3, 33e-3, 4e-3)
    table = TextTable(["beam at RX (mm)", "RX tol (mrad)",
                       "TX tol (mrad)"])
    best, best_tol = None, -1.0
    for r in diameter_sweep(link_10g_diverging, diameters, 1.75):
        table.add_row(fmt_float(r.beam_diameter_at_rx_m * 1e3, 0),
                      fmt_float(r.rx_angular_tolerance_rad * 1e3),
                      fmt_float(r.tx_angular_tolerance_rad * 1e3))
        if r.rx_angular_tolerance_rad > best_tol:
            best_tol = r.rx_angular_tolerance_rad
            best = r.beam_diameter_at_rx_m
    print(table.render())
    print(f"-> RX angular tolerance peaks near "
          f"{best * 1e3:.0f} mm; the paper picks 16 mm.\n")


def budgets():
    print("Step 3 -- link budgets of the final designs")
    for design in (link_10g_diverging(), link_25g()):
        print(f"\n{design.name} at 1.75 m "
              f"(sensitivity {design.sfp.rx_sensitivity_dbm:.0f} dBm):")
        print(design.budget(1.75).breakdown())
        print(f"{'margin':24s} {design.margin_db(1.75):+8.2f} dB")


def main():
    table1()
    fig11()
    budgets()


if __name__ == "__main__":
    main()
