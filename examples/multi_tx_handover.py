"""Multi-transmitter handover demo (the Section 3 extension).

Two ceiling TXs cover the play area; a person walks through the first
beam for 1.5 seconds.  With handover the link rides out the occlusion
on the second TX; without it the session goes dark::

    python examples/multi_tx_handover.py
"""

from repro.motion import StaticProfile
from repro.reporting import TextTable, fmt_float
from repro.simulate import HandoverController, MultiTxRig, OcclusionEvent


def run(use_handover: bool):
    rig = MultiTxRig(tx_count=2, seed=7)
    profile = StaticProfile(rig.testbed.home_pose, duration_s=5.0)
    occlusions = [OcclusionEvent(tx_index=0, start_s=1.5, end_s=3.0)]
    controller = HandoverController(rig, use_handover=use_handover)
    return controller.run(profile, occlusions)


def main():
    print("Simulating a 5 s session; TX 0's beam is blocked from "
          "t=1.5 s to t=3.0 s...\n")
    with_handover = run(use_handover=True)
    without = run(use_handover=False)

    table = TextTable(["configuration", "uptime (%)", "handovers"])
    table.add_row("two TXs + handover",
                  fmt_float(with_handover.uptime_fraction * 100, 1),
                  str(with_handover.handovers))
    table.add_row("single-TX behaviour",
                  fmt_float(without.uptime_fraction * 100, 1),
                  str(without.handovers))
    print(table.render())

    switched_at = None
    for t, tx in zip(with_handover.sample_times_s,
                     with_handover.active_tx):
        if tx != 0:
            switched_at = t
            break
    if switched_at is not None:
        print(f"\nThe controller handed the link to TX 1 at "
              f"t={switched_at:.3f} s, within milliseconds of the "
              f"blockage.")
    print("This is Section 3's occlusion answer: multiple TXs with "
          "handover,\nbounded by the RX galvo's coverage cone (which "
          "caps TX spacing).")


if __name__ == "__main__":
    main()
