"""The whole paper in two minutes: quick-run every registered
experiment and print the headline numbers next to the paper's::

    python examples/paper_tour.py
"""

from repro.reporting import TextTable
from repro.simulate import list_scenarios

PAPER_HEADLINES = {
    "table1": "diverging beats collimated on tolerance, loses ~25 dB",
    "fig11": "RX tolerance peaks at 5.77 mrad @ 16 mm",
    "table2": "stage-1 model error ~1.2-1.9 mm avg",
    "sec52": "10/10 realign trials reach optimal throughput",
    "fig16": "98.6 % availability over 500 traces",
    "thresholds": "tolerated ~33 cm/s and 16-18 deg/s (10G)",
}


def main():
    print("Cyclops paper tour -- quick versions of every registered "
          "experiment\n(full regenerations live in benchmarks/)\n")
    for scenario in list_scenarios():
        print(f"[{scenario.scenario_id}] {scenario.paper_ref}: "
              f"{scenario.description}")
        paper = PAPER_HEADLINES.get(scenario.scenario_id)
        if paper:
            print(f"  paper: {paper}")
        metrics = scenario.run_quick()
        table = TextTable(["metric", "value"])
        for name, value in metrics.items():
            table.add_row(name, f"{value:.4g}")
        print(table.render(indent="  "))
        print()
    print("Done.  For the full tables and figures:")
    print("  pytest benchmarks/ --benchmark-only -s")


if __name__ == "__main__":
    main()
