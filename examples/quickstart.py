"""Quickstart: build, calibrate, and point a Cyclops link.

Runs the full Section 4 pipeline against a simulated prototype and
then exercises the pointing function at a few headset poses::

    python examples/quickstart.py
"""

from repro.core import point
from repro.reporting import TextTable, fmt_float
from repro.simulate import Testbed


def main():
    print("Building a simulated Cyclops prototype (10G, bench "
          "geometry)...")
    testbed = Testbed(seed=7)
    print(f"  link design : {testbed.design.name}")
    print(f"  peak power  : "
          f"{testbed.design.peak_power_dbm(1.75):.1f} dBm at 1.75 m")
    print(f"  sensitivity : "
          f"{testbed.design.sfp.rx_sensitivity_dbm:.1f} dBm")

    print("\nCalibrating (Section 4.1 board fits + Section 4.2 "
          "mapping fit)...")
    outcome = testbed.calibrate()
    print(f"  K-space models fitted from 266 board samples each")
    print(f"  mapping fitted from {len(outcome.mapping_samples)} "
          f"aligned 5-tuples")

    print("\nPointing at random headset poses (Section 4.3):")
    table = TextTable(["pose", "iterations", "power (dBm)",
                       "peak (dBm)", "connected"])
    system = outcome.system
    for i, pose in enumerate(testbed.evaluation_poses(5)):
        report = testbed.tracker.report(pose)
        command = point(system, report)
        testbed.apply_command(command)
        state = testbed.channel.evaluate(pose)
        table.add_row(str(i + 1), str(command.iterations),
                      fmt_float(state.received_power_dbm, 1),
                      fmt_float(testbed.design.peak_power_dbm(
                          state.range_m), 1),
                      "yes" if state.connected else "NO")
    print(table.render())
    print("\nDone: the learned pointing function keeps the FSO beam "
          "aligned\nwithin the link's movement tolerance, as in the "
          "paper's Section 5.2.")


if __name__ == "__main__":
    main()
