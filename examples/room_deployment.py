"""Plan a home deployment: coverage, redundancy, safety, streaming.

Walks the questions a Cyclops install raises beyond the paper's bench
prototype: how many ceiling TXs does a play space need, how much of
it gets handover-capable redundancy, is the launch eye-safe, and what
content fits the resulting link::

    python examples/room_deployment.py
"""

import math

from repro.link import link_10g_diverging, link_25g
from repro.optics import assess_design
from repro.plan import CoverageConstraints, Room, plan_greedy, service_radius_m
from repro.reporting import TextTable, fmt_float
from repro.stream import CATALOGUE


def coverage_section(room):
    print(f"Room: {room.width_m:.1f} x {room.depth_m:.1f} m, ceiling "
          f"{room.ceiling_height_m:.1f} m, head {room.head_height_m:.1f} m")
    constraints = CoverageConstraints()
    radius = service_radius_m(room, constraints)
    print(f"One ceiling TX serves a {radius:.2f} m radius "
          f"(GM cone {math.degrees(constraints.cone_half_angle_rad):.0f} deg, "
          f"range <= {constraints.max_range_m:.1f} m)\n")
    plan = plan_greedy(room, constraints, target_fraction=0.95,
                       resolution_m=0.2)
    print(f"Greedy plan: {len(plan.tx_positions)} TXs -> "
          f"{plan.coverage_fraction(0.2) * 100:.0f} % coverage, "
          f"{plan.redundancy_fraction(0.2) * 100:.0f} % with >=2 TXs "
          f"(handover-capable)")
    table = TextTable(["TX", "x (m)", "y (m)"])
    for i, (x, y) in enumerate(plan.tx_positions):
        table.add_row(str(i), fmt_float(x, 2), fmt_float(y, 2))
    print(table.render())
    return plan


def safety_section():
    print("\nEye safety (IEC 60825-1 Class 1, approximate):")
    table = TextTable(["design", "launched (dBm)", "limit (mW)",
                       "hazard distance (m)", "safe at 1.75 m"])
    for design in (link_10g_diverging(), link_25g()):
        report = assess_design(design)
        table.add_row(design.name,
                      fmt_float(report.launched_power_dbm, 1),
                      fmt_float(report.class1_limit_mw, 1),
                      fmt_float(report.hazard_distance_m, 2),
                      "yes" if report.safe_at_link_range else "NO")
    print(table.render())


def content_section():
    print("\nWhat the links carry raw:")
    table = TextTable(["format", "raw Gbps", "10G", "25G"])
    for fmt in CATALOGUE:
        table.add_row(fmt.name.split(" (")[0],
                      fmt_float(fmt.raw_bitrate_gbps, 1),
                      "yes" if fmt.fits_raw(9.4) else "no",
                      "yes" if fmt.fits_raw(23.5) else "no")
    print(table.render())


def main():
    room = Room(width_m=3.0, depth_m=2.5)
    coverage_section(room)
    safety_section()
    content_section()


if __name__ == "__main__":
    main()
