"""Drift detection and recovery: the Section 4 deployment loop.

Simulates months of ownership in a minute: the headset's tracker
re-anchors its world origin (drift), the drift monitor notices the
post-realignment power sag, and the system recovers with the cheap
mapping-only refit -- no calibration board required::

    python examples/drift_recovery.py
"""

import numpy as np

from repro.core import DriftMonitor, point, remap
from repro.simulate import Testbed


def post_tp_power(testbed, system, pose):
    """Received power right after one realignment."""
    command = point(system, testbed.tracker.report(pose))
    try:
        testbed.apply_command(command)
    except ValueError:
        return -60.0  # commanded outside the coverage cone
    return testbed.channel.evaluate(pose).received_power_dbm


def main():
    print("Deploying and calibrating (full Section 4 pipeline)...")
    testbed = Testbed(seed=17)
    outcome = testbed.calibrate()
    system = outcome.system
    monitor = DriftMonitor(degradation_db=6.0, baseline_samples=10,
                           window=8)

    print("Normal operation: the monitor learns its power baseline.")
    for pose in testbed.evaluation_poses(10):
        power = post_tp_power(testbed, system, pose)
        monitor.observe(power)
    print(f"  baseline post-TP power: {monitor.baseline_dbm:.1f} dBm")

    print("\nThe tracker re-anchors (5 cm + 4 degrees of VR-space "
          "drift)...")
    testbed.apply_tracker_drift(translation_m=(0.05, -0.03, 0.02),
                                yaw_rad=np.radians(4.0))

    flagged_after = None
    for i, pose in enumerate(testbed.evaluation_poses(12)):
        power = post_tp_power(testbed, system, pose)
        if monitor.observe(power) and flagged_after is None:
            flagged_after = i + 1
    print(f"  drift flagged after {flagged_after} post-drift "
          f"realignments" if flagged_after else
          "  (drift not flagged -- should not happen)")

    print("\nRecovering with the mapping-only refit (Section 4.2, "
          "no board):")
    fresh = testbed.collect_mapping_samples(12)
    system = remap(system, fresh)
    monitor.reset()

    connected = 0
    powers = []
    for pose in testbed.evaluation_poses(10):
        power = post_tp_power(testbed, system, pose)
        powers.append(power)
        connected += power >= testbed.design.sfp.rx_sensitivity_dbm
    print(f"  after refit: {connected}/10 realignments connected, "
          f"median power {np.median(powers):.1f} dBm")
    print("\nThis is the paper's deployment claim: K-space calibration "
          "is factory\nwork; homes only ever repeat the 30-sample "
          "mapping step.")


if __name__ == "__main__":
    main()
